package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vtime"
)

// TestDepartGateHoldsFiniteHorizonRun: a finite-horizon Run must not
// return while the departure gate reports false, and must return
// promptly once the gate opens and Wake is called.
func TestDepartGateHoldsFiniteHorizonRun(t *testing.T) {
	s, _, _ := buildPipe(t, 2, 5, 10)
	var open atomic.Bool
	var polls atomic.Int64
	s.SetDepartGate(func(until vtime.Time) bool {
		if until != 1000 {
			t.Errorf("gate saw horizon %v, want 1000", until)
		}
		polls.Add(1)
		return open.Load()
	})

	done := make(chan error, 1)
	go func() { done <- s.Run(1000) }()

	// The pipe's local work ends at t=52; the run must be parked on
	// the gate, not returned.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("Run returned (%v) while the departure gate was closed", err)
	default:
	}
	if polls.Load() == 0 {
		t.Fatal("departure gate was never consulted")
	}

	open.Store(true)
	s.Wake()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run still parked after the departure gate opened")
	}
}

// TestInjectCtlRunsWhileLive: a control injection queued against a
// live (gate-parked) run loop executes on the scheduler goroutine.
func TestInjectCtlRunsWhileLive(t *testing.T) {
	s, _, _ := buildPipe(t, 2, 5, 10)
	var open atomic.Bool
	s.SetDepartGate(func(vtime.Time) bool { return open.Load() })
	done := make(chan error, 1)
	go func() { done <- s.Run(1000) }()

	ran := make(chan struct{})
	s.InjectCtl(func() bool { close(ran); return false }, func(err error) {
		t.Errorf("control action rejected while the loop was live: %v", err)
	})
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("control action never ran on the parked scheduler")
	}

	open.Store(true)
	s.Wake()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestInjectCtlRejectedAfterExit: once Run has returned, InjectCtl
// must reject immediately with ErrNotRunning instead of queueing the
// action for a scheduler that will never drain it.
func TestInjectCtlRejectedAfterExit(t *testing.T) {
	s, _, co := buildPipe(t, 2, 5, 10)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 5 {
		t.Fatalf("pipe delivered %d, want 5", len(co.Got))
	}
	rejected := make(chan error, 1)
	s.InjectCtl(func() bool {
		t.Error("control action ran after the loop exited")
		return false
	}, func(err error) { rejected <- err })
	select {
	case err := <-rejected:
		if !errors.Is(err, ErrNotRunning) {
			t.Fatalf("reject error = %v, want ErrNotRunning", err)
		}
	default:
		t.Fatal("InjectCtl neither ran nor rejected after Run exit")
	}
}
