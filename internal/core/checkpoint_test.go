package core

import (
	"errors"
	"testing"

	"repro/internal/vtime"
)

func TestCheckpointAndRestore(t *testing.T) {
	s, pr, co := buildPipe(t, 0, 10, 10)
	// Capture a checkpoint mid-run via a switch hook.
	var captured *CheckpointSet
	s.OnStep = func(now vtime.Time) {
		if now >= 50 && captured == nil {
			s.RequestCheckpoint("")
		}
	}
	s.OnCheckpoint = func(cs *CheckpointSet) { captured = cs }
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("checkpoint never captured")
	}
	if len(co.Got) != 10 {
		t.Fatalf("first run delivered %d, want 10", len(co.Got))
	}
	gotAtCkpt := captured.Image("cons")
	if gotAtCkpt == nil {
		t.Fatal("no image for cons")
	}

	// Rewind and re-run: the tail must replay identically.
	if err := s.RestoreCheckpoint(captured); err != nil {
		t.Fatal(err)
	}
	if s.Now() != captured.Time {
		t.Fatalf("after restore Now = %v, want %v", s.Now(), captured.Time)
	}
	if len(co.Got) >= 10 {
		t.Fatalf("restore did not rewind consumer state: %d values", len(co.Got))
	}
	if pr.Next >= 10 {
		t.Fatal("restore did not rewind producer state")
	}
	s.OnStep = nil
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 10 {
		t.Fatalf("replay delivered %d, want 10", len(co.Got))
	}
	for i, v := range co.Got {
		if v != i {
			t.Fatalf("replayed value %d = %d, want %d", i, v, i)
		}
	}
}

func TestRollbackRequestDuringRun(t *testing.T) {
	// An in-run rollback request rewinds and re-executes
	// deterministically.
	s, _, co := buildPipe(t, 0, 8, 10)
	s.SetAutoCheckpoint(20)
	rolled := false
	s.OnStep = func(now vtime.Time) {
		if now >= 60 && !rolled {
			rolled = true
			s.RequestRollback(30)
		}
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !rolled {
		t.Fatal("rollback never triggered")
	}
	if st := s.Stats(); st.Restores != 1 {
		t.Fatalf("restores = %d, want 1", st.Restores)
	}
	if len(co.Got) != 8 {
		t.Fatalf("final deliveries = %d, want 8", len(co.Got))
	}
	for i, v := range co.Got {
		if v != i {
			t.Fatalf("value %d = %d after rollback replay", i, v)
		}
	}
}

func TestRollbackWithoutCheckpointFails(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 3, 10)
	s.OnStep = func(now vtime.Time) {
		if now >= 20 {
			s.RequestRollback(10)
		}
	}
	err := s.Run(vtime.Infinity)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	s.Teardown()
}

func TestCheckpointRetention(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 30, 10)
	s.SetCheckpointRetention(3)
	s.SetAutoCheckpoint(10)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Checkpoints()); got != 3 {
		t.Fatalf("retained %d checkpoints, want 3", got)
	}
	cks := s.Checkpoints()
	for i := 1; i < len(cks); i++ {
		if cks[i].ID <= cks[i-1].ID {
			t.Fatal("checkpoints out of order")
		}
	}
	if s.LatestCheckpoint() != cks[len(cks)-1] {
		t.Fatal("LatestCheckpoint mismatch")
	}
}

func TestCheckpointTagOncePerID(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 5, 10)
	count := 0
	s.OnCheckpoint = func(*CheckpointSet) { count++ }
	s.RequestCheckpoint("snap-1")
	s.RequestCheckpoint("snap-1") // duplicate mark, must be ignored
	s.RequestCheckpoint("snap-2")
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("captured %d tagged checkpoints, want 2", count)
	}
}

func TestNotCheckpointable(t *testing.T) {
	s := NewSubsystem("nock")
	// BehaviorFunc has no StateSaver.
	s.NewComponent("plain", BehaviorFunc(func(p *Proc) error {
		for {
			if _, ok := p.Recv(); !ok {
				return nil
			}
		}
	}))
	s.RequestCheckpoint("")
	err := s.Run(vtime.Infinity)
	if !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("err = %v, want ErrNotCheckpointable", err)
	}
	s.Teardown()
}

func TestIncrementalCheckpointsShareState(t *testing.T) {
	// A consumer that never hears anything keeps identical state, so
	// incremental mode must share it between checkpoints.
	s := NewSubsystem("incr")
	co := &consumer{}
	cc, _ := s.NewComponent("cons", co)
	cc.AddPort("in")
	n, _ := s.NewNet("quiet", 0)
	s.Connect(n, cc.Port("in"))
	ticker := &producer{Count: 10, Period: 10}
	tc, _ := s.NewComponent("tick", ticker)
	tc.AddPort("out")
	n2, _ := s.NewNet("void", 0)
	s.Connect(n2, tc.Port("out"))
	s.SetIncrementalCheckpoints(true)
	s.SetAutoCheckpoint(10)
	s.SetCheckpointRetention(100)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	cks := s.Checkpoints()
	if len(cks) < 3 {
		t.Fatalf("only %d checkpoints", len(cks))
	}
	shared := 0
	for _, cs := range cks[1:] {
		img := cs.Image("cons")
		if img.Shared {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("incremental mode never shared an unchanged state")
	}
	// Bytes must count shared states as free.
	if cks[1].Bytes() >= cks[0].Bytes() {
		t.Fatalf("incremental checkpoint not smaller: %d vs %d", cks[1].Bytes(), cks[0].Bytes())
	}
}

func TestRestoreDropsFutureCheckpoints(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 10, 10)
	s.SetAutoCheckpoint(25)
	s.SetCheckpointRetention(100)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	cks := s.Checkpoints()
	if len(cks) < 3 {
		t.Fatalf("need >=3 checkpoints, have %d", len(cks))
	}
	target := cks[0]
	if err := s.RestoreCheckpoint(target); err != nil {
		t.Fatal(err)
	}
	after := s.Checkpoints()
	if len(after) != 1 || after[0] != target {
		t.Fatalf("future checkpoints not dropped: %d remain", len(after))
	}
	// Run to completion again after restore.
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointInboxPreserved(t *testing.T) {
	// Checkpoint while a message is in flight (sent, undelivered);
	// restore must re-deliver it exactly once.
	s := NewSubsystem("inflight")
	co := &consumer{}
	cc, _ := s.NewComponent("cons", co)
	cc.AddPort("in")
	// Producer sends at t=5 with delivery at t=105 (big net delay).
	pr := &producer{Count: 1, Period: 5}
	pc, _ := s.NewComponent("prod", pr)
	pc.AddPort("out")
	n, _ := s.NewNet("slow", 100)
	s.Connect(n, pc.Port("out"), cc.Port("in"))
	var cs *CheckpointSet
	s.OnStep = func(now vtime.Time) {
		if now >= 5 && cs == nil {
			s.RequestCheckpoint("")
		}
	}
	s.OnCheckpoint = func(c *CheckpointSet) { cs = c }
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 1 {
		t.Fatalf("first run: %d deliveries", len(co.Got))
	}
	img := cs.Image("cons")
	if len(img.Inbox) != 1 {
		t.Fatalf("checkpoint inbox has %d events, want 1 in-flight", len(img.Inbox))
	}
	s.OnStep = nil
	if err := s.RestoreCheckpoint(cs); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 1 || co.Times[0] != 105 {
		t.Fatalf("replay: got %v at %v", co.Got, co.Times)
	}
}

func TestImageAccessors(t *testing.T) {
	s, _, _ := buildPipe(t, 0, 2, 5)
	cs, err := s.CaptureNow("")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Components() != 2 {
		t.Fatalf("Components = %d, want 2", cs.Components())
	}
	if cs.Image("nope") != nil {
		t.Fatal("Image for unknown component should be nil")
	}
	if cs.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreOfDoneComponentStaysDone(t *testing.T) {
	s := NewSubsystem("donedone")
	pr := &producer{Count: 1, Period: 5}
	pc, _ := s.NewComponent("prod", pr)
	pc.AddPort("out")
	co := &consumer{}
	cc, _ := s.NewComponent("cons", co)
	cc.AddPort("in")
	n, _ := s.NewNet("w", 0)
	s.Connect(n, pc.Port("out"), cc.Port("in"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	cs, err := s.CaptureNow("")
	if err != nil {
		t.Fatal(err)
	}
	if live := cs.Image("prod").Live; live {
		t.Fatal("prod should be captured as done")
	}
	if err := s.RestoreCheckpoint(cs); err != nil {
		t.Fatal(err)
	}
	if !s.Component("prod").Done() {
		t.Fatal("done component resurrected by restore")
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if len(co.Got) != 1 {
		t.Fatalf("deliveries after no-op restore = %d", len(co.Got))
	}
}
