// Package core implements the single-host half of the Pia
// co-simulation kernel: components, interfaces, ports and nets, the
// two-level hierarchy of virtual time, the cooperative subsystem
// scheduler, checkpoint/restore, and the synchronous-memory model used
// for interrupt consistency.
//
// # Execution model
//
// A Subsystem owns a set of Components. Each component's behaviour is
// ordinary Go code running in its own goroutine, but the goroutines
// are *cooperatively* scheduled: the subsystem scheduler hands a run
// token to exactly one component at a time, exactly as Pia defeats the
// Java VM scheduler by queueing all component threads on mutexes and
// signalling the one it wants to run.
//
// Every component keeps a local virtual time; the subsystem time is
// the minimum over the local times of all live components (and pending
// event times), which maintains Pia's invariant that system time is
// always less than or equal to every local time. The scheduler always
// resumes the runnable component with the smallest local time, so a
// component blocked in Recv resumes precisely when subsystem time has
// caught up with its local time and every message it could observe has
// been delivered.
//
// # Rollback
//
// Components whose behaviour implements StateSaver can be
// checkpointed. A checkpoint request is satisfied lazily: each
// component's image is captured at the earliest moment it is parked
// after the request, and always before the component receives any
// further message — the rule Pia uses to prevent the domino effect.
// Restoring a checkpoint cancels the component goroutines and
// re-enters their Run functions from the restored state.
//
// Re-entry runs Run from the top, so behaviours must be resumable
// from their saved state. Reactive receive loops are naturally so.
// Process-style behaviours that pace themselves must keep their loop
// position in saved state and use DelayUntil against absolute times
// derived from it — a relative Delay taken before the capture would
// be charged again on re-entry, shifting the component's timeline.
//
// Inter-subsystem channels, distributed safe-time negotiation and
// Chandy-Lamport snapshots are layered on top by packages channel,
// snapshot and node; they interact with the scheduler through the
// Gate, Tap and Inject hooks defined here.
package core
