package core

import (
	"strings"
	"testing"

	"repro/internal/vtime"
)

// TestFilteredReceiveSlowPath exercises the non-head filtered receive
// (a message for another port arrives first).
func TestFilteredReceiveSlowPath(t *testing.T) {
	s := NewSubsystem("filt")
	var gotB, gotA any
	rx := BehaviorFunc(func(p *Proc) error {
		// Wait specifically for port "b" even though "a" gets traffic
		// first.
		m, ok := p.Recv("b")
		if !ok {
			return nil
		}
		gotB = m.Value
		// Now the earlier "a" message is still queued.
		m, ok = p.Recv("a")
		if !ok {
			return nil
		}
		gotA = m.Value
		return nil
	})
	rc, _ := s.NewComponent("rx", rx)
	rc.AddPort("a")
	rc.AddPort("b")
	tx := BehaviorFunc(func(p *Proc) error {
		p.Delay(10)
		p.Send("toA", "first")
		p.Delay(10)
		p.Send("toB", "second")
		return nil
	})
	tc, _ := s.NewComponent("tx", tx)
	tc.AddPort("toA")
	tc.AddPort("toB")
	na, _ := s.NewNet("na", 0)
	s.Connect(na, tc.Port("toA"), rc.Port("a"))
	nb, _ := s.NewNet("nb", 0)
	s.Connect(nb, tc.Port("toB"), rc.Port("b"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if gotB != "second" || gotA != "first" {
		t.Fatalf("filtered receive order: b=%v a=%v", gotB, gotA)
	}
}

func TestProcAccessors(t *testing.T) {
	s := NewSubsystem("acc")
	checked := false
	b := BehaviorFunc(func(p *Proc) error {
		if p.Name() != "c" {
			t.Error("Proc.Name wrong")
		}
		if p.SubsystemTime() > p.Time() {
			t.Error("subsystem time exceeds local time")
		}
		p.SetRunlevel("fancy")
		if p.Runlevel() != "fancy" {
			t.Error("Proc runlevel roundtrip failed")
		}
		if p.Pending() {
			t.Error("Pending true on empty inbox")
		}
		p.Checkpoint() // safe point; no checkpoint requested
		checked = true
		return nil
	})
	c, _ := s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("behaviour did not run")
	}
	if c.Name() != "c" || c.Runlevel() != "fancy" || !c.Done() || c.Err() != nil {
		t.Fatalf("component accessors: %v %v %v %v", c.Name(), c.Runlevel(), c.Done(), c.Err())
	}
	if c.Behavior() == nil {
		t.Fatal("Behavior accessor nil")
	}
	if len(c.Ports()) != 0 {
		t.Fatal("Ports should be empty")
	}
	if !strings.Contains(c.String(), "c") {
		t.Fatal("component String")
	}
}

func TestNetAccessors(t *testing.T) {
	s := NewSubsystem("net")
	drv := BehaviorFunc(func(p *Proc) error {
		p.Delay(5)
		p.Send("out", 42)
		return nil
	})
	c, _ := s.NewComponent("drv", drv)
	c.AddPort("out")
	n, _ := s.NewNet("w", 3)
	s.Connect(n, c.Port("out"))
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	v, at := n.LastValue()
	if v != 42 || at != 5 {
		t.Fatalf("LastValue = %v @%v", v, at)
	}
	ports := n.Ports()
	if len(ports) != 1 || ports[0].Component() != c || ports[0].Net() != n || ports[0].Hidden() {
		t.Fatalf("port accessors wrong: %+v", ports[0])
	}
	if !strings.Contains(n.String(), "w") {
		t.Fatal("net String")
	}
	if s.Component("drv").Port("out") != ports[0] {
		t.Fatal("Port lookup mismatch")
	}
	if len(s.Nets()) != 1 {
		t.Fatal("Nets accessor")
	}
}

func TestSendAtPastPanics(t *testing.T) {
	s := NewSubsystem("sap")
	b := BehaviorFunc(func(p *Proc) error {
		p.Delay(10)
		p.SendAt("out", 1, 5) // into the past: must panic -> error
		return nil
	})
	c, _ := s.NewComponent("c", b)
	c.AddPort("out")
	n, _ := s.NewNet("w", 0)
	s.Connect(n, c.Port("out"))
	if err := s.Run(vtime.Infinity); err == nil {
		t.Fatal("SendAt into the past did not error")
	}
}

func TestSendOnUnknownPortPanics(t *testing.T) {
	s := NewSubsystem("up")
	b := BehaviorFunc(func(p *Proc) error {
		p.Send("nope", 1)
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err == nil {
		t.Fatal("send on unknown port did not error")
	}
}

func TestRecvUnknownPortPanics(t *testing.T) {
	s := NewSubsystem("rp")
	b := BehaviorFunc(func(p *Proc) error {
		p.Recv("ghost")
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err == nil {
		t.Fatal("recv on unknown port did not error")
	}
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	s := NewSubsystem("ab")
	b := BehaviorFunc(func(p *Proc) error {
		p.Advance(-1)
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err == nil {
		t.Fatal("negative Advance did not error")
	}
}

func TestTracerReceivesLines(t *testing.T) {
	s := NewSubsystem("tr")
	var lines []string
	s.Tracer = func(l string) { lines = append(lines, l) }
	b := BehaviorFunc(func(p *Proc) error {
		p.Logf("hello %d", 7)
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "hello 7") {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace lines: %v", lines)
	}
}

func TestReplaceBehaviorErrors(t *testing.T) {
	s := NewSubsystem("rb")
	b := BehaviorFunc(func(p *Proc) error { return nil })
	s.NewComponent("c", b)
	if err := s.ReplaceBehavior("ghost", b, false); err == nil {
		t.Fatal("replace of unknown component accepted")
	}
	if err := s.ReplaceBehavior("c", nil, false); err == nil {
		t.Fatal("nil replacement accepted")
	}
	if err := s.ReplaceBehavior("c", BehaviorFunc(func(p *Proc) error { return nil }), false); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	for _, st := range []status{statusNew, statusRunnable, statusRecv, statusRunning, statusDone, status(42)} {
		if st.String() == "" {
			t.Fatal("empty status string")
		}
	}
}
