package core

import (
	"testing"

	"repro/internal/vtime"
)

// memCPU models a processor whose main computation reads a shared
// address while a device raises interrupts that write it.
type memCPU struct {
	Reads     []uint64
	ReadTimes []vtime.Time
	IRQs      int
	Sync      bool // statically mark the address synchronous
}

const sharedAddr uint32 = 0x1000

func (c *memCPU) Run(p *Proc) error {
	mem := p.Memory()
	if c.Sync {
		mem.MarkSynchronous(sharedAddr)
	}
	p.SetInterruptHandler("irq", func(p *Proc, m Msg) {
		c.IRQs++
		mem.HandlerWrite(p, sharedAddr, uint64(m.Value.(int)), m.Sent)
	})
	for i := 0; i < 5; i++ {
		p.Advance(10)
		v := mem.Read(p, sharedAddr)
		c.Reads = append(c.Reads, v)
		c.ReadTimes = append(c.ReadTimes, p.Time())
	}
	// Take any interrupt that is still pending.
	p.DrainInterrupts()
	return nil
}

func (c *memCPU) SaveState() ([]byte, error)  { return GobSave(c) }
func (c *memCPU) RestoreState(b []byte) error { return GobRestore(c, b) }

// irqDevice raises one interrupt at t=15 carrying the value 99.
type irqDevice struct{ Fired bool }

func (d *irqDevice) Run(p *Proc) error {
	if d.Fired {
		return nil
	}
	p.Delay(15)
	p.Send("irq", 99)
	d.Fired = true
	return nil
}

func (d *irqDevice) SaveState() ([]byte, error)  { return GobSave(d) }
func (d *irqDevice) RestoreState(b []byte) error { return GobRestore(d, b) }

func buildMemSystem(t *testing.T, static bool) (*Subsystem, *memCPU) {
	t.Helper()
	s := NewSubsystem("mem")
	cpu := &memCPU{Sync: static}
	cc, err := s.NewComponent("cpu", cpu)
	if err != nil {
		t.Fatal(err)
	}
	cc.AddPort("irq")
	dev := &irqDevice{}
	dc, _ := s.NewComponent("dev", dev)
	dc.AddPort("irq")
	n, _ := s.NewNet("irqline", 0)
	if err := s.Connect(n, cc.Port("irq"), dc.Port("irq")); err != nil {
		t.Fatal(err)
	}
	return s, cpu
}

func TestStaticSynchronousOrdering(t *testing.T) {
	// With the address statically marked, the read at t=20 must
	// already observe the interrupt raised at t=15.
	s, cpu := buildMemSystem(t, true)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if cpu.IRQs != 1 {
		t.Fatalf("IRQs = %d, want 1", cpu.IRQs)
	}
	// Reads at t=10 see 0; reads at t>=20 see 99.
	for i, rt := range cpu.ReadTimes {
		want := uint64(0)
		if rt >= 20 {
			want = 99
		}
		if cpu.Reads[i] != want {
			t.Fatalf("read@%v = %d, want %d (reads=%v times=%v)", rt, cpu.Reads[i], want, cpu.Reads, cpu.ReadTimes)
		}
	}
	if mem := s.Component("cpu").Memory(); mem.Violations != 0 {
		t.Fatalf("static marking should prevent violations, got %d", mem.Violations)
	}
}

func TestOptimisticViolationRewindsAndConverges(t *testing.T) {
	// Without static marking the CPU runs ahead, the late interrupt
	// write collides with earlier optimistic reads, the address is
	// dynamically marked synchronous, and the rewind re-executes
	// correctly.
	s, cpu := buildMemSystem(t, false)
	if _, err := s.CaptureNow(""); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	mem := s.Component("cpu").Memory()
	if mem.Violations == 0 {
		t.Fatal("expected at least one consistency violation")
	}
	if !mem.Synchronous(sharedAddr) {
		t.Fatal("violating address was not marked synchronous")
	}
	if st := s.Stats(); st.Restores == 0 {
		t.Fatal("no rollback happened")
	}
	// After convergence the history must be the synchronous one.
	for i, rt := range cpu.ReadTimes {
		want := uint64(0)
		if rt >= 20 {
			want = 99
		}
		if cpu.Reads[i] != want {
			t.Fatalf("read@%v = %d, want %d (reads=%v times=%v)", rt, cpu.Reads[i], want, cpu.Reads, cpu.ReadTimes)
		}
	}
	if cpu.IRQs != 1 {
		t.Fatalf("IRQs = %d, want exactly 1 after replay", cpu.IRQs)
	}
}

func TestMemoryBasics(t *testing.T) {
	s := NewSubsystem("mb")
	done := make(chan struct{})
	b := BehaviorFunc(func(p *Proc) error {
		defer close(done)
		mem := p.Memory()
		mem.Write(p, 1, 10)
		mem.Write(p, 2, 20)
		if mem.Read(p, 1) != 10 || mem.Read(p, 2) != 20 || mem.Read(p, 3) != 0 {
			t.Error("memory contents wrong")
		}
		addrs := mem.Addresses()
		if len(addrs) != 2 || addrs[0] != 1 || addrs[1] != 2 {
			t.Errorf("Addresses = %v", addrs)
		}
		mem.MarkSynchronous(7, 8)
		if mem.SyncCount() != 2 || !mem.Synchronous(7) || mem.Synchronous(1) {
			t.Error("sync marking wrong")
		}
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestHandlerWriteNoViolationWhenNoLaterRead(t *testing.T) {
	s := NewSubsystem("ok")
	b := BehaviorFunc(func(p *Proc) error {
		mem := p.Memory()
		p.Advance(5)
		_ = mem.Read(p, 9) // read at t=5
		// Interrupt raised later than the read: no violation.
		if mem.HandlerWrite(p, 9, 1, 7) {
			t.Error("unexpected violation")
		}
		if mem.Read(p, 9) != 1 {
			t.Error("handler write lost")
		}
		return nil
	})
	s.NewComponent("c", b)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
}
