package core

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// costBounds are the per-step wall-latency histogram edges in
// nanoseconds: 1µs … 100ms. Component steps are user React/Recv
// bodies, so the interesting range spans "trivial state flip" to
// "accidentally quadratic".
var costBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// attribEntry pins one component's identity for the pull collector.
// The collector reads only the component's atomic cost counter, never
// scheduler-owned state, so it is safe from any goroutine.
type attribEntry struct {
	sub  string
	comp string
	c    *Component
}

// costAttrib is the per-component wall-cost attribution sink: the
// input signal for the mesh placement-policy follow-up ("which
// component is hot, and where should it live"). Dispatch sites stamp
// a monotonic clock around each step and feed the elapsed wall time
// here; the registry pulls totals and a top-N ranking at snapshot
// time.
type costAttrib struct {
	reg  *metrics.Registry
	topN int

	mu      sync.Mutex
	entries []attribEntry
}

// EnableCostAttribution turns on per-component wall-clock cost
// attribution, registering per-component step-latency histograms
// (`pia_comp_cost_ns`), lifetime totals
// (`pia_comp_cost_ns_total{sub,comp}`), and a top-N ranking computed
// at snapshot time (`pia_comp_cost_top{sub,rank,comp}`, topN <= 0
// defaults to 5). Call between runs, like EnableMetrics; idempotent.
// Speculative steps that later roll back still count — the wall time
// was really spent, and attribution feeds metrics, never digests.
func (s *Subsystem) EnableCostAttribution(reg *metrics.Registry, topN int) {
	if reg == nil || s.attrib != nil {
		return
	}
	if topN <= 0 {
		topN = 5
	}
	reg.SetHelp("pia_comp_cost_ns", "Wall nanoseconds per component step (histogram).")
	reg.SetHelp("pia_comp_cost_ns_total", "Total wall nanoseconds attributed to a component's steps.")
	reg.SetHelp("pia_comp_cost_top", "Top-N components by attributed wall cost; value is total nanoseconds, rank 1 is hottest.")
	a := &costAttrib{reg: reg, topN: topN}
	s.attrib = a
	reg.AddCollector(a.collect)
}

// stepTimed dispatches one component step, stamping wall time around
// it when attribution is on. The disabled path is the nil check and a
// direct call — no clock reads, no allocation.
func (s *Subsystem) stepTimed(c *Component, key vtime.Time) {
	a := s.attrib
	if a == nil {
		s.step(c, key)
		return
	}
	t0 := time.Now()
	s.step(c, key)
	a.note(s, c, time.Since(t0).Nanoseconds())
}

// note folds one step's elapsed wall time into the component's
// accumulators. The enabled steady-state path (histogram already
// created) performs only atomic adds — 0 allocs/op, CI-guarded.
func (a *costAttrib) note(s *Subsystem, c *Component, dt int64) {
	c.costNS.Add(dt)
	h := c.mCost
	if h == nil {
		// First dispatch for this component under attribution:
		// register its histogram and pin it for the collector. Only
		// one dispatcher steps a given component at a time, so this
		// races with nothing on c.
		h = a.reg.Histogram(metrics.Label("pia_comp_cost_ns", "sub", s.name, "comp", c.name), costBounds)
		c.mCost = h
		a.mu.Lock()
		a.entries = append(a.entries, attribEntry{sub: s.name, comp: c.name, c: c})
		a.mu.Unlock()
	}
	h.Observe(dt)
}

// collect is the pull collector: per-component lifetime totals plus
// the top-N ranking, computed from the atomic counters at snapshot
// time so the dispatch path never sorts anything.
func (a *costAttrib) collect(emit func(metrics.Sample)) {
	a.mu.Lock()
	entries := append([]attribEntry(nil), a.entries...)
	a.mu.Unlock()

	type row struct {
		e attribEntry
		v int64
	}
	rows := make([]row, 0, len(entries))
	for _, e := range entries {
		v := e.c.costNS.Load()
		emit(metrics.Sample{
			Name:  metrics.Label("pia_comp_cost_ns_total", "sub", e.sub, "comp", e.comp),
			Kind:  metrics.KindCounter,
			Value: v,
		})
		rows = append(rows, row{e, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].e.comp < rows[j].e.comp // deterministic ties
	})
	n := a.topN
	if n > len(rows) {
		n = len(rows)
	}
	for i := 0; i < n; i++ {
		emit(metrics.Sample{
			Name: metrics.Label("pia_comp_cost_top",
				"sub", rows[i].e.sub,
				"rank", strconv.Itoa(i+1),
				"comp", rows[i].e.comp),
			Kind:  metrics.KindGauge,
			Value: rows[i].v,
		})
	}
}
