package core

import (
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// schedMetrics holds the push-side instruments the scheduler samples
// once per loop iteration. Per-component lag gauges live on the
// components themselves (created at EnableMetrics time, or lazily for
// components added mid-run — live migration adopts and removes
// components while the scheduler is between rounds), so the Run loop
// does no map lookups or string work — just atomic stores behind a
// single nil check.
type schedMetrics struct {
	reg      *metrics.Registry
	runnable *metrics.Gauge // components currently runnable
	now      *metrics.Gauge // published subsystem virtual time (ns)
}

// EnableMetrics wires the subsystem into reg. Scheduler counters
// (steps, deliveries, drives, stalls, checkpoints, restores, parallel
// rounds, bytes on nets) are exported pull-style via a collector over
// the race-safe Stats() accessor; per-component virtual-time lag
// (local − system) and the runnable-set size are sampled push-style
// once per scheduler round, on the scheduler goroutine, where those
// values are coherent.
//
// Call after all components are created and before Run. Enabling is
// idempotent per subsystem; with metrics never enabled the scheduler
// pays a single nil check per round and the components pay nothing.
func (s *Subsystem) EnableMetrics(reg *metrics.Registry) {
	if reg == nil || s.mSched != nil {
		return
	}
	m := &schedMetrics{
		reg:      reg,
		runnable: reg.Gauge(metrics.Label("pia_sched_runnable", "sub", s.name)),
		now:      reg.Gauge(metrics.Label("pia_sched_now_ns", "sub", s.name)),
	}
	for _, c := range s.order {
		c.mLag = reg.Gauge(metrics.Label("pia_comp_lag_ns", "sub", s.name, "comp", c.name))
	}
	name := s.name
	reg.AddCollector(func(emit func(metrics.Sample)) {
		st := s.Stats()
		for _, kv := range []struct {
			metric string
			v      int64
		}{
			{"pia_sched_steps", st.Steps},
			{"pia_sched_deliveries", st.Deliveries},
			{"pia_sched_drives", st.Drives},
			{"pia_sched_stalls", st.Stalls},
			{"pia_sched_checkpoints", st.Checkpoints},
			{"pia_sched_restores", st.Restores},
			{"pia_sched_par_rounds", st.ParRounds},
			{"pia_sched_bytes_on_nets", st.BytesOnNets},
			{"pia_optimistic_rounds", st.SpecRounds},
			{"pia_optimistic_members", st.SpecMembers},
			{"pia_optimistic_commits", st.SpecCommits},
			{"pia_optimistic_rollbacks", st.Rollbacks},
			{"pia_optimistic_rolled_back_events", st.RolledBack},
		} {
			emit(metrics.Sample{
				Name:  metrics.Label(kv.metric, "sub", name),
				Kind:  metrics.KindCounter,
				Value: kv.v,
			})
		}
	})
	s.mSched = m
}

// sampleMetrics publishes the per-round gauges. Runs on the scheduler
// goroutine right after the runnable scan, where every component is
// parked and local times are stable. Components created after
// EnableMetrics (subsystems hosted before their fragment is built, or
// adopted by live migration) get their gauge on first sample; a
// removed component's gauge simply stops updating.
func (s *Subsystem) sampleMetrics() {
	m := s.mSched
	m.runnable.Set(int64(len(s.active)))
	m.now.Set(int64(s.now))
	for _, c := range s.order {
		if c.mLag == nil {
			c.mLag = m.reg.Gauge(metrics.Label("pia_comp_lag_ns", "sub", s.name, "comp", c.name))
		}
		lag := vtime.Duration(0)
		if c.localTime > s.now {
			lag = c.localTime.Sub(s.now)
		}
		c.mLag.Set(int64(lag))
	}
}
