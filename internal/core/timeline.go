package core

import (
	"repro/internal/timeline"
	"repro/internal/vtime"
)

// EnableTimeline attaches the structured span/event recorder to this
// subsystem's lifecycle: net drives, checkpoint captures, restores
// (with the rewind marker covering the discarded-future window),
// runlevel switches, and scheduler stall/resume transitions.
//
// Wiring rides the existing hook chain (OnDrive/OnCheckpoint/
// OnRestore/OnRunlevel/OnStall), so with the timeline never enabled
// every hook stays nil and the drive fanout hot path is untouched —
// zero allocations, same as with metrics disabled. Enabling is
// idempotent per (subsystem, recorder).
func (s *Subsystem) EnableTimeline(rec *timeline.Recorder) {
	if rec == nil || s.tlRec == rec {
		return
	}
	s.tlRec = rec
	name := s.name

	prevDrive := s.OnDrive
	s.OnDrive = func(net, src string, t vtime.Time, v any) {
		if prevDrive != nil {
			prevDrive(net, src, t, v)
		}
		rec.Drive(name, src, net, t, v)
	}
	prevCkpt := s.OnCheckpoint
	s.OnCheckpoint = func(cs *CheckpointSet) {
		if prevCkpt != nil {
			prevCkpt(cs)
		}
		rec.Checkpoint(name, cs.Tag, cs.Time)
	}
	prevRestore := s.OnRestore
	s.OnRestore = func(cs *CheckpointSet) {
		if prevRestore != nil {
			prevRestore(cs)
		}
		rec.Restore(name, cs.Tag, cs.Time)
	}
	prevRunlevel := s.OnRunlevel
	s.OnRunlevel = func(comp, level string) {
		if prevRunlevel != nil {
			prevRunlevel(comp, level)
		}
		// Runs on the scheduler goroutine (noteRunlevel), where s.now
		// is coherent.
		rec.Runlevel(name, comp, level, s.now)
	}
	prevStall := s.OnStall
	s.OnStall = func() {
		if prevStall != nil {
			prevStall()
		}
		rec.Stall(name, s.now, 0)
	}
	prevResume := s.OnResume
	s.OnResume = func() {
		if prevResume != nil {
			prevResume()
		}
		rec.Resume(name, s.now)
	}
}

// Timeline returns the recorder attached with EnableTimeline, or nil.
func (s *Subsystem) Timeline() *timeline.Recorder { return s.tlRec }
