package core

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/vtime"
)

// Image is one component's saved state inside a checkpoint set.
type Image struct {
	Component string
	LocalTime vtime.Time
	Runlevel  string
	Live      bool // goroutine was alive (Run had not returned)
	EOF       bool // Recv had already been told the simulation ended

	// State is the behaviour state from StateSaver.SaveState; nil for
	// components whose behaviour is not checkpointable (only legal
	// when the component was already done).
	State []byte
	// Shared reports that State is byte-identical to the previous
	// checkpoint's image and was not re-stored (incremental mode).
	Shared bool

	// Inbox is the component's undelivered messages at capture time.
	Inbox []event.Event

	// MemData is the component's synchronous-memory contents, nil if
	// the component uses no memory model.
	MemData map[uint32]uint64
}

type netImage struct {
	value  any
	time   vtime.Time
	source string
}

// CheckpointSet is a consistent image of an entire subsystem: every
// component's state, local time and undelivered messages, plus net
// values, all captured at one scheduler step. Because every component
// is parked when the scheduler captures, the set is a consistent cut:
// no message can cross it, which is how this implementation realizes
// Pia's rule that each component saves before receiving any message
// that follows a checkpoint request (the domino-effect guard).
type CheckpointSet struct {
	ID   uint64
	Tag  string // Chandy-Lamport snapshot id, "" for local checkpoints
	Time vtime.Time

	images map[string]*Image
	nets   map[string]netImage
}

// Image returns the named component's image, or nil.
func (cs *CheckpointSet) Image(comp string) *Image { return cs.images[comp] }

// Components returns the number of component images in the set.
func (cs *CheckpointSet) Components() int { return len(cs.images) }

// Bytes reports the storage the set holds, counting shared
// (incrementally deduplicated) states once as zero.
func (cs *CheckpointSet) Bytes() int {
	n := 0
	for _, img := range cs.images {
		if !img.Shared {
			n += len(img.State)
		}
		n += len(img.Inbox) * 64 // rough event bookkeeping
		n += len(img.MemData) * 12
	}
	return n
}

// RequestCheckpoint schedules a checkpoint; the scheduler captures it
// at its next step, when every component is parked. A non-empty tag
// names a distributed (Chandy-Lamport) snapshot: a subsystem performs
// the local checkpoint only once per tag, so duplicate marks are
// ignored. Safe from any goroutine.
func (s *Subsystem) RequestCheckpoint(tag string) {
	s.extGen.Add(1)
	s.mu.Lock()
	s.ckptTags = append(s.ckptTags, tag)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SetCheckpointRetention sets how many checkpoint sets are kept
// (oldest dropped first). The default is 8.
func (s *Subsystem) SetCheckpointRetention(n int) {
	if n < 1 {
		n = 1
	}
	s.ckptKeep = n
}

// SetIncrementalCheckpoints toggles incremental mode: component
// states identical to the previous checkpoint are shared rather than
// re-stored. This is the paper's planned "incremental rather than
// total checkpoints" extension.
func (s *Subsystem) SetIncrementalCheckpoints(on bool) { s.ckptIncr = on }

// SetAutoCheckpoint makes the scheduler capture a checkpoint whenever
// virtual time has advanced by at least d since the last automatic
// one. Zero disables. Required for optimistic channels and for
// optimistic interrupt handling, which must be able to rewind.
func (s *Subsystem) SetAutoCheckpoint(d vtime.Duration) { s.autoCkpt = d }

// Checkpoints returns the retained checkpoint sets, oldest first.
func (s *Subsystem) Checkpoints() []*CheckpointSet {
	out := make([]*CheckpointSet, len(s.checkpoints))
	copy(out, s.checkpoints)
	return out
}

// LatestCheckpoint returns the most recent checkpoint, or nil.
func (s *Subsystem) LatestCheckpoint() *CheckpointSet {
	if len(s.checkpoints) == 0 {
		return nil
	}
	return s.checkpoints[len(s.checkpoints)-1]
}

// CaptureNow captures a checkpoint immediately. Only legal when the
// subsystem is not running (between Run calls) or from scheduler
// hooks; the scheduler itself uses it to honour RequestCheckpoint.
func (s *Subsystem) CaptureNow(tag string) (*CheckpointSet, error) {
	return s.capture(tag)
}

func (s *Subsystem) capture(tag string) (*CheckpointSet, error) {
	if tag != "" {
		if s.doneTags == nil {
			s.doneTags = make(map[string]bool)
		}
		if s.doneTags[tag] {
			return nil, nil // already checkpointed for this snapshot id
		}
		s.doneTags[tag] = true
	}
	s.ckptNextID++
	cs := &CheckpointSet{
		ID:     s.ckptNextID,
		Tag:    tag,
		Time:   s.now,
		images: make(map[string]*Image, len(s.order)),
		nets:   make(map[string]netImage, len(s.nets)),
	}
	var prev *CheckpointSet
	if s.ckptIncr && len(s.checkpoints) > 0 {
		prev = s.checkpoints[len(s.checkpoints)-1]
	}
	for _, c := range s.order {
		img := &Image{
			Component: c.name,
			LocalTime: c.localTime,
			Runlevel:  c.runlevel,
			Live:      c.status != statusDone,
			EOF:       c.eofSignaled,
		}
		if sv := c.saver(); sv != nil {
			st, err := sv.SaveState()
			if err != nil {
				return nil, fmt.Errorf("core: checkpoint of %s: %w", c.name, err)
			}
			img.State = st
			if prev != nil {
				if p := prev.images[c.name]; p != nil && bytes.Equal(p.State, st) {
					img.State = p.State
					img.Shared = true
				}
			}
		} else if img.Live {
			return nil, fmt.Errorf("core: checkpoint of %s: %w", c.name, ErrNotCheckpointable)
		}
		img.Inbox = c.inbox.Snapshot()
		if c.memory != nil {
			img.MemData = c.memory.snapshotData()
		}
		cs.images[c.name] = img
	}
	for name, n := range s.nets {
		cs.nets[name] = netImage{value: n.lastValue, time: n.lastTime, source: n.lastSource}
	}
	s.checkpoints = append(s.checkpoints, cs)
	if len(s.checkpoints) > s.ckptKeep {
		drop := len(s.checkpoints) - s.ckptKeep
		s.checkpoints = append([]*CheckpointSet(nil), s.checkpoints[drop:]...)
	}
	atomic.AddInt64(&s.stats.Checkpoints, 1)
	s.tracef("checkpoint #%d tag=%q @%v", cs.ID, tag, cs.Time)
	if s.OnCheckpoint != nil {
		s.OnCheckpoint(cs)
	}
	return cs, nil
}

// restoreBefore restores the latest checkpoint with Time <= t.
func (s *Subsystem) restoreBefore(t vtime.Time) error {
	var target *CheckpointSet
	for i := len(s.checkpoints) - 1; i >= 0; i-- {
		if s.checkpoints[i].Time <= t {
			target = s.checkpoints[i]
			break
		}
	}
	if target == nil {
		return fmt.Errorf("%w (requested <= %v)", ErrNoCheckpoint, t)
	}
	return s.RestoreCheckpoint(target)
}

// restoreComponentBefore restores the latest checkpoint in which the
// named component's local time is <= t.
func (s *Subsystem) restoreComponentBefore(comp string, t vtime.Time) error {
	var target *CheckpointSet
	for i := len(s.checkpoints) - 1; i >= 0; i-- {
		if img := s.checkpoints[i].Image(comp); img != nil && img.LocalTime <= t {
			target = s.checkpoints[i]
			break
		}
	}
	if target == nil {
		return fmt.Errorf("%w (component %s <= %v)", ErrNoCheckpoint, comp, t)
	}
	return s.RestoreCheckpoint(target)
}

// RestoreCheckpoint rewinds the whole subsystem to the given
// checkpoint set: component goroutines are unwound, behaviour states
// restored, inboxes and net values reset, and virtual time set back
// to the capture time. Checkpoints from the discarded future are
// dropped. Legal on the scheduler goroutine or between runs.
func (s *Subsystem) RestoreCheckpoint(cs *CheckpointSet) error {
	for _, c := range s.order {
		if cs.images[c.name] == nil {
			return fmt.Errorf("core: checkpoint #%d has no image for %s", cs.ID, c.name)
		}
	}
	for _, c := range s.order {
		s.kill(c)
	}
	for _, c := range s.order {
		img := cs.images[c.name]
		if sv := c.saver(); sv != nil && img.State != nil {
			if err := sv.RestoreState(img.State); err != nil {
				return fmt.Errorf("core: restore of %s: %w", c.name, err)
			}
		}
		c.localTime = img.LocalTime
		c.runlevel = img.Runlevel
		c.eofSignaled = img.EOF
		c.err = nil
		c.inbox.Reset()
		for _, e := range img.Inbox {
			c.inbox.PushStamped(e)
		}
		if img.Live {
			c.status = statusNew
			c.token = make(chan tokenMsg)
		} else {
			c.status = statusDone
		}
		c.recvPorts = nil
		c.recvDeadline = vtime.Infinity
		if c.memory != nil {
			c.memory.restoreData(img.MemData)
		}
	}
	for name, n := range s.nets {
		if ni, ok := cs.nets[name]; ok {
			n.lastValue, n.lastTime, n.lastSource = ni.value, ni.time, ni.source
		}
	}
	s.now = cs.Time
	// Automatic checkpointing resumes from the restored point: the
	// replay timeline needs its own cuts, or a second rollback could
	// land before messages redelivered in the first replay and lose
	// them (their channel messages are consumed and will not come
	// again).
	s.lastAuto = cs.Time
	// Drop checkpoints from the abandoned future.
	kept := s.checkpoints[:0]
	for _, old := range s.checkpoints {
		if old.ID <= cs.ID {
			kept = append(kept, old)
		}
	}
	s.checkpoints = kept
	s.fatal = nil
	s.resetActive()
	atomic.AddInt64(&s.stats.Restores, 1)
	s.tracef("restored checkpoint #%d @%v", cs.ID, cs.Time)
	if s.OnRestore != nil {
		s.OnRestore(cs)
	}
	return nil
}
