package core

// SharedPool is a bounded worker pool that serves the parallel rounds
// of many subsystems at once. A multi-tenant host that gave every
// session its own SetWorkers pool would run tenants × workers
// goroutines and let any one tenant saturate the machine; a SharedPool
// caps the host at one fixed worker count and fair-shares it.
//
// Fairness is round-robin over subsystems, not over jobs: each
// subsystem owns a FIFO queue of its current round's members, and
// idle workers scan the queues starting one past the queue that
// supplied the previous job. A tenant dispatching 1000-member rounds
// therefore cannot starve a tenant dispatching 2-member rounds — every
// queue is offered a worker once per scan cycle.
//
// Sharing cannot perturb results: a round's side effects are buffered
// per member and merged on the owning subsystem's scheduler goroutine
// in canonical (time, component-index) order, so which worker ran a
// member — or which other subsystem's jobs interleaved with it — is
// invisible in virtual time, drive order, and digests.

import "sync"

// poolQueue holds one subsystem's outstanding round jobs. head/jobs
// form a FIFO that is reset (not reallocated) each round.
type poolQueue struct {
	sub  *Subsystem
	jobs []parJob
	head int
}

func (q *poolQueue) pending() bool { return q.head < len(q.jobs) }

// SharedPool fair-shares a fixed set of workers across the parallel
// rounds of any number of subsystems. Create with NewSharedPool,
// attach subsystems with (*Subsystem).SetPool, detach with Forget,
// and join the workers with Close.
type SharedPool struct {
	size int

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[*Subsystem]*poolQueue
	ring   []*poolQueue // round-robin scan order
	rr     int          // next queue offered a worker
	closed bool
	wg     sync.WaitGroup
}

// NewSharedPool starts a pool of n workers (minimum 1).
func NewSharedPool(n int) *SharedPool {
	if n < 1 {
		n = 1
	}
	p := &SharedPool{size: n, queues: make(map[*Subsystem]*poolQueue)}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Size returns the worker count.
func (p *SharedPool) Size() int { return p.size }

// submit enqueues one subsystem round. Called on the owning
// subsystem's scheduler goroutine, which then blocks on its roundWG —
// so at most one round per subsystem is ever queued, and the queue is
// always drained when submit finds it again.
func (p *SharedPool) submit(s *Subsystem, members []*Component) {
	p.mu.Lock()
	q := p.queues[s]
	if q == nil {
		q = &poolQueue{sub: s}
		p.queues[s] = q
		p.ring = append(p.ring, q)
	}
	q.jobs = q.jobs[:0]
	q.head = 0
	for _, c := range members {
		q.jobs = append(q.jobs, parJob{c: c, key: c.planKey})
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// take pops the next job round-robin across subsystems, blocking
// until one is available or the pool closes.
func (p *SharedPool) take() (*Subsystem, parJob, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, parJob{}, false
		}
		if n := len(p.ring); n > 0 {
			for i := 0; i < n; i++ {
				q := p.ring[(p.rr+i)%n]
				if !q.pending() {
					continue
				}
				job := q.jobs[q.head]
				q.jobs[q.head] = parJob{}
				q.head++
				p.rr = (p.rr + i + 1) % n
				return q.sub, job, true
			}
		}
		p.cond.Wait()
	}
}

func (p *SharedPool) worker() {
	defer p.wg.Done()
	for {
		sub, job, ok := p.take()
		if !ok {
			return
		}
		sub.stepTimed(job.c, job.key)
		sub.roundWG.Done()
	}
}

// Forget detaches a subsystem, dropping its queue slot. Call only
// with the subsystem between runs (no round in flight): rounds are
// synchronous, so a subsystem that is not inside Run has an empty,
// fully drained queue.
func (p *SharedPool) Forget(s *Subsystem) {
	p.mu.Lock()
	q := p.queues[s]
	delete(p.queues, s)
	if q != nil {
		for i, rq := range p.ring {
			if rq != q {
				continue
			}
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			break
		}
		if len(p.ring) > 0 {
			p.rr %= len(p.ring)
		} else {
			p.rr = 0
		}
	}
	p.mu.Unlock()
}

// Close wakes and joins the workers. Call only when no attached
// subsystem is inside Run.
func (p *SharedPool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
