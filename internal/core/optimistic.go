package core

// Optimistic (Time Warp) execution.
//
// The conservative round model (parallel.go) dispatches only the
// components whose next action lies strictly below the safe horizon
// H = min(key+outLA). On low-lookahead topologies H collapses onto
// the minimum key and rounds degenerate to sequential steps even
// though most pending actions are, in fact, causally independent —
// the conservative analysis just cannot prove it. The optimistic mode
// gambles on that independence: when the safe cohort would leave pool
// workers idle, components whose next action falls in [H, B) with
// B = H + W (W the optimism window) are dispatched too, after a
// lightweight per-component image is captured. Their effects are
// buffered exactly like safe members' and nothing outside the round
// can observe them before the merge, so the gamble is confined to the
// round: the merge either commits a speculation or undoes it without
// anti-messages.
//
// Straggler detection. Every round delivery arrives at or after H
// (sends from below H carry at least outLA of delay; sends from
// speculative members happen at or after their entry key >= H), so
// safe members can never observe a missing message and are never
// rolled back. A speculative member m can be wrong two ways:
//
//  1. Direct straggler: a buffered drive with delivery time
//     d <= m's executed clock proves m ran without an input the
//     sequential schedule would have given it first. The tie at
//     d == viewNow additionally requires the send to canonically
//     precede m's action at d under the (time, component-index)
//     order.
//
//  2. The GVT commit rule: the sequential scheduler emits actions
//     (drives, trace lines, deliveries) in globally non-decreasing
//     canonical (time, component-index) order, and components that
//     merely parked near the horizon will act again next iteration.
//     A speculation is only proven once every other pending action
//     in the system lies canonically after it. The merge therefore
//     computes the post-round GVT — the lexicographic minimum
//     next-action position over every component, where a component's
//     next key folds in both its parked key and the earliest round
//     delivery destined to it — and aborts every speculative member
//     whose executed position reached the GVT. Aborting a member
//     lowers its own next key back to its entry key, so the rule
//     runs as a monotone fixpoint. This subsumes the
//     transitive-consumer subtree (any member that consumed or raced
//     a doomed output necessarily executed at or past the GVT) and
//     is what keeps drive counts, virtual times and trace digests
//     bit-identical to the sequential kernel at any worker count.
//
// Rollback. Speculative members only shrink their inboxes during a
// round (fanout happens at merge), so the journal of popped events
// plus the pre-round image (behaviour state, local clock, runlevel,
// memory words) restores the member exactly; the goroutine is
// unwound and re-enters Run from the restored state under the usual
// StateSaver replay contract. Rolled-back work never reaches the
// Tracer, OnDrive, metrics or canonical timeline exports; the only
// record is a transient straggler-kind timeline span and the
// pia_optimistic_* counters.
//
// The throttle. Speculation is charged per round: a checkpoint per
// speculative member plus discarded work on rollback. When rollbacks
// dominate, the adaptive throttle halves the effective window (down
// to conservative-only, retried after a cooldown) and re-earns the
// configured window after a clean streak, so a hostile topology pays
// at most the checkpoint overhead over pure conservatism.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/vtime"
)

const (
	// optCooldownRounds is how many optimistic opportunities are
	// skipped after the throttle collapses the window to zero before
	// a small window is retried.
	optCooldownRounds = 64
	// optRegrowRounds is the clean-round streak that doubles a
	// shrunken window back toward the configured one.
	optRegrowRounds = 8
)

// SetOptimism sets the optimistic (Time Warp) window: with w > 0 and
// a worker pool configured (SetWorkers), rounds whose safe cohort
// leaves workers idle dispatch checkpointable components
// speculatively up to w past the safe horizon, rolling back on
// stragglers at merge time. Results stay bit-identical to the
// sequential kernel. 0 (the default) keeps rounds purely
// conservative. Speculative dispatch requires the component's
// behaviour to implement StateSaver; components that don't simply
// stay conservative. Only legal between runs.
func (s *Subsystem) SetOptimism(w vtime.Duration) {
	if w < 0 {
		w = 0
	}
	s.optimism = w
	s.optThrottle = true
}

// Optimism returns the configured optimism window (0 = conservative).
func (s *Subsystem) Optimism() vtime.Duration { return s.optimism }

// SetOptimismThrottle enables or disables the adaptive window
// throttle (enabled by default when SetOptimism is called). Disabling
// it pins the window at the configured value regardless of rollback
// ratio — useful for tests that must observe a rollback every round.
func (s *Subsystem) SetOptimismThrottle(on bool) { s.optThrottle = on }

// optimismWindow returns the effective window for the next round,
// advancing the throttle's cooldown state.
func (s *Subsystem) optimismWindow() vtime.Duration {
	if s.optimism == 0 {
		return 0
	}
	if !s.optThrottle {
		return s.optimism
	}
	if s.effOpt == 0 {
		if s.optCool > 0 {
			s.optCool--
			return 0
		}
		// Cooldown over: retry with a small window and let the clean
		// streak earn the rest back.
		s.effOpt = s.optimism / 8
		if s.effOpt == 0 {
			s.effOpt = 1
		}
	}
	return s.effOpt
}

// noteSpecOutcome feeds one optimistic round's result to the
// adaptive throttle: a rollback ratio above 1/2 halves the window
// (entering a cooldown when it collapses), a clean streak regrows it.
func (s *Subsystem) noteSpecOutcome(spec, aborted int) {
	if !s.optThrottle {
		return
	}
	switch {
	case aborted*2 > spec:
		s.optClean = 0
		s.effOpt /= 2
		if s.effOpt == 0 {
			s.optCool = optCooldownRounds
			if s.OnThrottleCollapse != nil {
				s.OnThrottleCollapse(spec, aborted)
			}
		}
	case aborted > 0:
		s.optClean = 0
	default:
		s.optClean++
		if s.optClean >= optRegrowRounds && s.effOpt < s.optimism {
			s.optClean = 0
			s.effOpt *= 2
			if s.effOpt > s.optimism || s.effOpt <= 0 {
				s.effOpt = s.optimism
			}
		}
	}
}

// specImage is the lightweight pre-round image of a speculative
// member: exactly the per-component slice of a checkpoint Image,
// minus the inbox (pops are journaled instead — a speculating member
// only ever shrinks its inbox, so restore is a re-push).
type specImage struct {
	state     []byte
	localTime vtime.Time
	runlevel  string
	eof       bool
	live      bool
	hasMem    bool
	mem       map[uint32]uint64
}

// captureSpec images c for a speculative dispatch. Returns false —
// keeping the component out of the speculative cohort — when the
// behaviour cannot be checkpointed.
func (s *Subsystem) captureSpec(c *Component) bool {
	sv := c.saver()
	if sv == nil {
		return false
	}
	st, err := sv.SaveState()
	if err != nil {
		return false
	}
	c.specImg = specImage{
		state:     st,
		localTime: c.localTime,
		runlevel:  c.runlevel,
		eof:       c.eofSignaled,
		live:      c.status != statusDone,
	}
	if c.memory != nil {
		c.specImg.hasMem = true
		c.specImg.mem = c.memory.snapshotData()
	}
	return true
}

// detectStragglers marks every speculative round member whose
// execution is invalidated: directly by a straggler (a buffered drive
// delivering at or before the member's executed clock) or by the GVT
// commit rule (some other pending action in the system lies
// canonically before the member's executed position, so committing it
// would emit out of sequential order). Runs on the scheduler
// goroutine after the round barrier; pure detection, no side effects
// are applied. Returns the abort count.
func (s *Subsystem) detectStragglers(members []*Component) int {
	s.specGen++
	gen := s.specGen
	// Pass 1: sweep every buffered drive once, recording the earliest
	// in-round delivery destined to each component (mirroring the
	// merge fanout: no self-delivery, hidden ports are sinks, not
	// schedulable listeners) and applying the precise per-delivery
	// straggler rule to speculative targets. Every drive counts, even
	// a later-aborted sender's: its deliveries vanish, so counting
	// them can only over-abort, which is sound — missing one is not.
	touch := func(m *Component, d vtime.Time) {
		if m.specSeen != gen {
			m.specSeen = gen
			m.specMinDeliv = d
			if !m.active {
				s.specTouched = append(s.specTouched, m)
			}
		} else if d < m.specMinDeliv {
			m.specMinDeliv = d
		}
	}
	aborted := 0
	for _, c := range members {
		b := c.wbuf
		b.postKey = c.key()
		// A member that observed nothing and emitted nothing is inert:
		// it popped no delivery, expired no deadline (an expiry is a
		// negative observation a straggler can invalidate) and wrote
		// no op, so its round execution is the deterministic,
		// emission-free Run prefix over its own state — the same
		// transition the sequential scheduler performs whenever it
		// first reaches the member — and it commits unconditionally.
		// Deliveries merged afterwards land in its parked inbox
		// exactly as they would have sequentially. This matters at
		// startup, where every checkpointable component sits at key 0
		// waiting for input and would otherwise tie-abort against
		// whichever component the canonical order runs first.
		b.inert = b.spec && len(b.ops) == 0 && len(b.popped) == 0 && !b.expired
	}
	for _, c := range members {
		b := c.wbuf
		for i := range b.ops {
			op := &b.ops[i]
			if op.kind != opDrive {
				continue
			}
			d := op.t.Add(op.net.Delay)
			for _, pt := range op.net.ports {
				m := pt.comp
				if m == nil || m == c || pt.hidden {
					continue
				}
				touch(m, d)
				mb := m.wbuf
				if mb == nil || !mb.spec || mb.aborted || mb.inert {
					continue
				}
				if d > m.viewNow {
					continue // ordinary future delivery
				}
				if d == m.viewNow && !(op.at < d || (op.at == d && c.index < m.index)) {
					continue // m's action at d canonically precedes the send
				}
				// Straggler: m executed past an input it should have
				// seen first.
				mb.aborted = true
				aborted++
			}
		}
	}
	// Pass 2: the GVT fixpoint. A component's next-action position is
	// (min(next key, earliest round delivery to it), index), where the
	// next key is the post-round parked key for surviving members, the
	// entry key for aborted ones (replay resumes there — the re-entry
	// prefix up to the saved park emits nothing, per the StateSaver
	// contract), and the cached scan key for everyone else. A
	// speculative member may commit only if its executed position
	// (viewNow, index) does not lexicographically exceed the minimum
	// over all these positions; aborting a member lowers its own
	// position back to its entry key, so iterate to the fixpoint.
	for {
		gvtT := vtime.Infinity
		gvtI := int(^uint(0) >> 1)
		consider := func(c *Component, k vtime.Time, foldDeliv bool) {
			if foldDeliv && c.specSeen == gen && c.specMinDeliv < k {
				k = c.specMinDeliv
			}
			if k < gvtT || (k == gvtT && c.index < gvtI) {
				gvtT, gvtI = k, c.index
			}
		}
		for _, c := range s.active {
			if b := c.wbuf; b != nil {
				if b.aborted {
					// Replays from its entry key; committed deliveries
					// may wake the restored state even earlier.
					consider(c, c.planKey, true)
				} else {
					// A member that finished mid-round is finished in
					// the sequential schedule too by the time any later
					// delivery lands: dead letters don't bound the GVT.
					consider(c, b.postKey, c.status != statusDone)
				}
			} else {
				consider(c, c.planKey, true)
			}
		}
		for _, c := range s.specTouched {
			if c.status != statusDone {
				consider(c, vtime.Infinity, true)
			}
		}
		changed := false
		for _, c := range members {
			b := c.wbuf
			if !b.spec || b.aborted || b.inert {
				continue
			}
			if c.viewNow > gvtT || (c.viewNow == gvtT && c.index > gvtI) {
				b.aborted = true
				aborted++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	s.specTouched = s.specTouched[:0]
	return aborted
}

// rollbackSpec restores one straggler-hit member to its pre-round
// image: the goroutine is unwound, behaviour state, clocks, runlevel
// and memory words restored, and the journaled inbox pops pushed
// back. The member re-enters Run from the restored state (the
// StateSaver replay contract) and will be rescheduled at its restored
// key — necessarily at or past the commit wall, so replay order
// matches the sequential schedule. Canonical outputs never saw the
// discarded work; the only traces are the pia_optimistic_* counters
// and a transient straggler-kind timeline span.
func (s *Subsystem) rollbackSpec(c *Component) {
	img := &c.specImg
	b := c.wbuf
	s.kill(c)
	if sv := c.saver(); sv != nil {
		if err := sv.RestoreState(img.state); err != nil && s.fatal == nil {
			s.fatal = fmt.Errorf("core: optimistic rollback of %s: %w", c.name, err)
		}
	}
	specNow := c.viewNow
	c.localTime = img.localTime
	c.runlevel = img.runlevel
	c.eofSignaled = img.eof
	c.err = nil
	if img.live {
		c.status = statusNew
		c.token = make(chan tokenMsg)
	} else {
		c.status = statusDone
	}
	c.recvPorts = nil
	c.recvDeadline = vtime.Infinity
	for i := range b.popped {
		c.inbox.PushStamped(b.popped[i])
	}
	if img.hasMem && c.memory != nil {
		c.memory.restoreData(img.mem)
	}
	c.specImg = specImage{}
	atomic.AddInt64(&s.stats.Rollbacks, 1)
	atomic.AddInt64(&s.stats.RolledBack, int64(len(b.ops)))
	s.tlRec.Straggler("", c.name, "", img.localTime, specNow)
}
