package core

import (
	"fmt"

	"repro/internal/vtime"
)

// This file holds the subsystem surgery primitives live component
// migration is built on: detaching hidden (channel) ports from nets,
// removing a component wholesale, and restoring a single component
// image captured on another subsystem. All of them are only legal
// between runs — the mesh control plane calls them at a drained
// step barrier, when no scheduler goroutine is inside Run and every
// channel is provably empty.

// DetachHidden removes the named hidden port from the net. It is the
// inverse of AttachHidden, used when a net's channel binding moves to
// another endpoint under a new placement epoch.
func (s *Subsystem) DetachHidden(n *Net, name string) error {
	if s.running {
		return fmt.Errorf("core: cannot detach hidden port %q while running", name)
	}
	if n.sub != s {
		return fmt.Errorf("core: net %s belongs to another subsystem", n.Name)
	}
	for _, p := range n.ports {
		if p.hidden && p.Name == name {
			n.detach(p)
			return nil
		}
	}
	return fmt.Errorf("core: net %s has no hidden port %q", n.Name, name)
}

// RemoveComponent detaches the named component from every net, unwinds
// its goroutine and removes it from the subsystem. Its pending inbox
// events are discarded with it (a migration captures them in the
// component image first). Only legal between runs.
func (s *Subsystem) RemoveComponent(name string) error {
	if s.running {
		return fmt.Errorf("core: cannot remove component %q while running", name)
	}
	c := s.comps[name]
	if c == nil {
		return fmt.Errorf("core: no component %q", name)
	}
	s.kill(c)
	c.status = statusDone
	for _, p := range c.ports {
		if p.net != nil {
			p.net.detach(p)
		}
	}
	delete(s.comps, name)
	kept := s.order[:0]
	for _, o := range s.order {
		if o != c {
			kept = append(kept, o)
		}
	}
	s.order = kept
	// Renumber so creation-order tie-breaks stay dense and unique:
	// NewComponent assigns index = len(order), which must not collide
	// with a surviving component's index.
	for i, o := range s.order {
		o.index = i
	}
	s.resetActive()
	s.tracef("%s removed", name)
	return nil
}

// RestoreComponentImage applies a single component image — captured by
// CaptureNow on this or another subsystem — to an existing component.
// The component must already have been created with the right
// behaviour and ports; the image supplies behaviour state, local time,
// runlevel, liveness, EOF flag, undelivered inbox events and memory
// contents. The migration path uses it to adopt a component whose
// image travelled from another node.
func (s *Subsystem) RestoreComponentImage(img *Image) error {
	if s.running {
		return fmt.Errorf("core: cannot restore component %q while running", img.Component)
	}
	c := s.comps[img.Component]
	if c == nil {
		return fmt.Errorf("core: no component %q to restore into", img.Component)
	}
	s.kill(c)
	if img.State != nil {
		sv := c.saver()
		if sv == nil {
			return fmt.Errorf("core: restore of %s: behaviour does not implement StateSaver", c.name)
		}
		if err := sv.RestoreState(img.State); err != nil {
			return fmt.Errorf("core: restore of %s: %w", c.name, err)
		}
	} else if img.Live {
		return fmt.Errorf("core: restore of %s: %w", c.name, ErrNotCheckpointable)
	}
	c.localTime = img.LocalTime
	c.runlevel = img.Runlevel
	c.eofSignaled = img.EOF
	c.err = nil
	c.inbox.Reset()
	for _, e := range img.Inbox {
		c.inbox.PushStamped(e)
	}
	if img.Live {
		c.status = statusNew
		c.token = make(chan tokenMsg)
	} else {
		c.status = statusDone
	}
	c.recvPorts = nil
	c.recvDeadline = vtime.Infinity
	if c.memory != nil {
		c.memory.restoreData(img.MemData)
	}
	s.resetActive()
	s.tracef("%s adopted @%v (live=%v, inbox=%d)", c.name, c.localTime, img.Live, len(img.Inbox))
	return nil
}

// LastDrive returns the net's most recent drive: value, drive time and
// driving component. The migration path uses it to carry a re-homed
// net fragment's sampling state to the destination subsystem.
func (n *Net) LastDrive() (v any, t vtime.Time, src string) {
	return n.lastValue, n.lastTime, n.lastSource
}

// RestoreLastDrive seeds the net's sampling state (LastValue et al.)
// without fanning anything out. Used when a net fragment is recreated
// on a migration destination.
func (n *Net) RestoreLastDrive(v any, t vtime.Time, src string) {
	n.lastValue, n.lastTime, n.lastSource = v, t, src
}

// AdvanceTo lifts the subsystem clock to t without executing anything.
// Only legal between runs, and only forward. The mesh step barrier
// uses it so a freshly adopted component lands on a subsystem whose
// clock matches the migration horizon even when the destination's own
// last event fell short of it.
func (s *Subsystem) AdvanceTo(t vtime.Time) error {
	if s.running {
		return fmt.Errorf("core: cannot advance clock while running")
	}
	if t < s.now {
		return fmt.Errorf("core: AdvanceTo(%v) would rewind past %v", t, s.now)
	}
	s.now = t
	return nil
}
