package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
)

// Reactor is the reactive-component pattern: a behaviour that is a
// pure function of incoming messages. Components with distinct modes
// for data receipt and computation — the model Pia's synchronization
// works best with — fit Reactor naturally, and reactors are
// automatically resumable after a rollback because all their state
// lives in the receiver struct.
type Reactor interface {
	// OnMessage handles one delivered message. Returning a non-nil
	// error terminates the component with that error.
	OnMessage(p *Proc, m Msg) error
}

// Initializer is optionally implemented by Reactors that need to act
// before the first message (e.g. send a reset pulse). It runs every
// time the behaviour is (re)entered, including after a rollback, so
// it must be idempotent with respect to the reactor's state.
type Initializer interface {
	Init(p *Proc) error
}

// Finalizer is optionally implemented by Reactors that want a hook
// when the simulation ends (Recv returned ok=false).
type Finalizer interface {
	Finish(p *Proc) error
}

// React adapts a Reactor to the Behavior interface. If the reactor
// also implements StateSaver the adapter forwards checkpointing;
// otherwise, if the reactor value is gob-encodable, wrap it with
// GobState instead.
func React(r Reactor) Behavior { return &reactorBehavior{r: r} }

type reactorBehavior struct {
	r Reactor
}

func (b *reactorBehavior) Run(p *Proc) error {
	if init, ok := b.r.(Initializer); ok {
		if err := init.Init(p); err != nil {
			return err
		}
	}
	for {
		m, ok := p.Recv()
		if !ok {
			if fin, isFin := b.r.(Finalizer); isFin {
				return fin.Finish(p)
			}
			return nil
		}
		if err := b.r.OnMessage(p, m); err != nil {
			return err
		}
	}
}

func (b *reactorBehavior) SaveState() ([]byte, error) {
	if sv, ok := b.r.(StateSaver); ok {
		return sv.SaveState()
	}
	return GobSave(b.r)
}

func (b *reactorBehavior) RestoreState(data []byte) error {
	if sv, ok := b.r.(StateSaver); ok {
		return sv.RestoreState(data)
	}
	return GobRestore(b.r, data)
}

// GobSave encodes v with gob; a convenience for StateSaver
// implementations whose state is an exported-field struct.
func GobSave(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobRestore decodes data (produced by GobSave) into v, which must be
// a pointer to the same type. The target is zeroed first: gob omits
// zero-valued fields on encode, so decoding into a dirty struct would
// otherwise leave stale state behind — fatal for rollback.
func GobRestore(v any, data []byte) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("core: GobRestore target must be a non-nil pointer, got %T", v)
	}
	rv.Elem().Set(reflect.Zero(rv.Elem().Type()))
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
