package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// Behavior is the functionality contained in a component: the actual
// (embedded) software or a model of the hardware. Run is executed on
// the component's goroutine under cooperative scheduling; all
// interaction with the rest of the system goes through the Proc.
//
// Run returns when the component is finished; returning a non-nil
// error aborts the whole subsystem run. If the behaviour also
// implements StateSaver, Run may be re-entered after a rollback with
// the behaviour's state restored, so it must be written to resume
// from its state (reactive receive loops are naturally resumable).
type Behavior interface {
	Run(p *Proc) error
}

// BehaviorFunc adapts a plain function to the Behavior interface.
type BehaviorFunc func(p *Proc) error

// Run implements Behavior.
func (f BehaviorFunc) Run(p *Proc) error { return f(p) }

// StateSaver is implemented by behaviours that support checkpoint and
// restore. SaveState must capture everything Run needs to resume;
// RestoreState must leave the behaviour exactly as it was when the
// image was saved. Both are called while the component is parked, so
// they never race with Run.
type StateSaver interface {
	SaveState() ([]byte, error)
	RestoreState([]byte) error
}

// status is a component's scheduling state.
type status uint8

const (
	statusNew      status = iota // goroutine not started yet
	statusRunnable               // has the right to run when its local time is minimal
	statusRecv                   // parked in Recv waiting for a message
	statusRunning                // currently holds the run token
	statusDone                   // Run returned
)

func (s status) String() string {
	switch s {
	case statusNew:
		return "new"
	case statusRunnable:
		return "runnable"
	case statusRecv:
		return "recv"
	case statusRunning:
		return "running"
	case statusDone:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Component is a container for some basic functionality — an embedded
// processor running a program, an ASIC, an FPGA. All fields are owned
// by the subsystem scheduler except where noted.
type Component struct {
	name string
	sub  *Subsystem

	behavior Behavior
	ports    map[string]*Port
	ifaces   map[string]*Interface

	localTime vtime.Time
	status    status
	inbox     event.Queue // undelivered messages for this component

	// index is the component's creation order: the deterministic
	// tie-break for equal scheduling keys and the canonical merge
	// order for parallel-round output.
	index int

	// parked is the component->scheduler half of the cooperative
	// handshake: the component's goroutine signals here whenever it
	// parks. It is per component (rather than one shared channel)
	// so parallel-round workers can resume and await distinct
	// components concurrently.
	parked chan struct{}

	// active marks membership in the scheduler's runnable index.
	// Components whose key is Infinity are lazily compacted out and
	// re-activated when an event lands in their inbox.
	active  bool
	planKey vtime.Time // key cached by the last scheduler scan

	// mLag is the component's virtual-time lag gauge, created lazily
	// on the scheduler goroutine (see Subsystem.sampleMetrics). Held
	// here rather than in an order-indexed slice so it survives
	// components being added or removed mid-run by live migration.
	mLag *metrics.Gauge

	// costNS accumulates wall nanoseconds spent stepping this
	// component (attribution enabled only); mCost is the matching
	// per-step latency histogram, created lazily on first dispatch.
	// Dispatches for one component never overlap (a component is one
	// job per round), so mCost needs no lock of its own; rounds are
	// ordered by the round WaitGroup.
	costNS atomic.Int64
	mCost  *metrics.Histogram

	// outLA is the component's output lookahead: the minimum
	// propagation delay over every net its ports attach to (the
	// paper's conservative lookahead, per component). Nothing this
	// component sends can affect any other component earlier than
	// key+outLA. Computed once per Run; topology is fixed while
	// running.
	outLA vtime.Duration

	// Fast-path scheduling state (see proc.go and parallel.go).
	// viewNow is the virtual time of the component's current fused
	// scheduling step — what Subsystem.now would read were every
	// inline action a separate scheduler step. fastUntil is the
	// exclusive bound below which the component may act inline
	// without a scheduler handoff (0 disables); the fast path is
	// vacated whenever the subsystem's external-request generation
	// no longer matches fastGen.
	viewNow   vtime.Time
	fastUntil vtime.Time
	fastGen   uint64

	// wbuf collects side effects (drives, trace lines, runlevel
	// notes) while a parallel-round worker holds the token; nil in
	// sequential execution.
	wbuf *workerBuf

	// specImg is the lightweight pre-round image captured before a
	// speculative (past-horizon) dispatch; valid only for the round
	// that captured it. See optimistic.go.
	specImg specImage

	// Optimistic-merge scratch: the earliest in-round delivery
	// destined to this component, valid only while specSeen matches
	// the subsystem's detection generation (see detectStragglers).
	specSeen     uint64
	specMinDeliv vtime.Time

	// recvPorts is the port filter of the Recv the component is
	// parked in (nil = any port); recvDeadline bounds the wait.
	recvPorts    map[string]bool
	recvDeadline vtime.Time

	runlevel string

	// cooperative-scheduling handshake
	token chan tokenMsg

	memory *Memory // nil unless the component uses synchronous memory

	// interrupt handling (set via Proc.SetInterruptHandler)
	irqPort string
	irqFn   func(*Proc, Msg)

	proc *Proc

	eofSignaled bool // Recv already told "simulation over" once

	err error // terminal error from Run
}

// tokenMsg is what the scheduler hands a parked component.
type tokenMsg struct {
	kill bool // unwind the goroutine (rollback/shutdown)
	msg  *Msg // delivered message when resuming from Recv
	ok   bool // false: Recv should report end-of-simulation/timeout
}

// killPanic unwinds a component goroutine on rollback or shutdown.
type killPanic struct{ comp string }

// Name returns the component's name.
func (c *Component) Name() string { return c.name }

// LocalTime returns the component's local virtual time. Safe to call
// from the scheduler or between runs; racing it against a live run is
// a caller bug.
func (c *Component) LocalTime() vtime.Time { return c.localTime }

// Runlevel returns the component's current detail level.
func (c *Component) Runlevel() string { return c.runlevel }

// SetRunlevel changes the component's detail level. It is applied by
// the scheduler at the component's next safe point; calling it while
// the subsystem is between runs applies immediately.
func (c *Component) SetRunlevel(level string) { c.runlevel = level }

// Port returns the named port, or nil.
func (c *Component) Port(name string) *Port { return c.ports[name] }

// Ports returns the component's port names in creation order is not
// guaranteed; use for diagnostics.
func (c *Component) Ports() []*Port {
	out := make([]*Port, 0, len(c.ports))
	for _, p := range c.ports {
		out = append(out, p)
	}
	return out
}

// Behavior returns the component's behaviour instance.
func (c *Component) Behavior() Behavior { return c.behavior }

// Memory returns the component's synchronous-memory model, creating
// it on first use.
func (c *Component) Memory() *Memory {
	if c.memory == nil {
		c.memory = newMemory(c)
	}
	return c.memory
}

// Err returns the terminal error from the component's Run, if any.
func (c *Component) Err() error { return c.err }

// Done reports whether the component's Run has returned.
func (c *Component) Done() bool { return c.status == statusDone }

// key returns the component's scheduling key: the earliest virtual
// time at which it could next act, or Infinity if it cannot act
// without outside input.
func (c *Component) key() vtime.Time {
	switch c.status {
	case statusNew, statusRunnable:
		return c.localTime
	case statusRecv:
		k := vtime.Infinity
		if c.recvPorts == nil {
			// Unfiltered receive — the overwhelmingly common case. The
			// key is a pure column read: the head of the inbox's time
			// column, no event materialized. This is what keeps the
			// safe-horizon scan walking contiguous memory.
			if t := c.inbox.NextTime(); t != vtime.Infinity {
				k = vtime.Max(t, c.localTime)
			}
		} else if e, ok := c.nextDeliverable(); ok {
			k = vtime.Max(e.Time, c.localTime)
		}
		if c.recvDeadline < k {
			k = vtime.Max(c.recvDeadline, c.localTime)
		}
		return k
	default:
		return vtime.Infinity
	}
}

// nextDeliverable returns the earliest inbox event matching the
// component's current receive filter; ok is false when none matches.
func (c *Component) nextDeliverable() (event.Event, bool) {
	head, ok := c.inbox.Peek()
	if !ok || c.recvPorts == nil || c.recvPorts[head.Port] {
		// No filter, empty inbox, or the head already matches — the
		// overwhelmingly common cases, all O(1).
		return head, ok
	}
	// Filtered receive with a non-matching head: a linear column scan
	// for the (Time, Seq)-minimal match, no snapshot allocated.
	return c.inbox.MinMatching(c.recvPorts)
}

// popDeliverable removes and returns the event nextDeliverable would
// return. While the component runs speculatively (past the safe
// horizon in an optimistic round), every pop is journaled so a
// straggler rollback can push the consumed events back.
func (c *Component) popDeliverable() (event.Event, bool) {
	e, ok := c.popDeliverableRaw()
	if ok {
		if b := c.wbuf; b != nil && b.spec {
			b.popped = append(b.popped, e)
		}
	}
	return e, ok
}

func (c *Component) popDeliverableRaw() (event.Event, bool) {
	if c.recvPorts == nil {
		return c.inbox.Pop()
	}
	if head, ok := c.inbox.Peek(); ok && c.recvPorts[head.Port] {
		return c.inbox.Pop()
	}
	return c.inbox.PopMatching(c.recvPorts)
}

// tracef emits a trace line from component context: buffered when a
// parallel-round worker holds the token, direct otherwise. The
// Tracer-nil check runs before any formatting.
func (c *Component) tracef(format string, args ...any) {
	if c.sub.Tracer == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	if c.wbuf != nil {
		c.wbuf.push(parOp{at: c.viewNow, kind: opTrace, str: line})
		return
	}
	c.sub.Tracer(line)
}

// noteRunlevel records an imperative runlevel switch from component
// context, buffering it during a parallel round.
func (c *Component) noteRunlevel(level string) {
	s := c.sub
	if c.wbuf != nil {
		if s.OnRunlevel != nil || s.Tracer != nil {
			c.wbuf.push(parOp{at: c.viewNow, kind: opRunlevel, str: level})
		}
		return
	}
	s.noteRunlevel(c, level)
}

// emit routes a component-driven net drive: buffered during a
// parallel round, direct otherwise. A direct send shrinks the fast
// bound to the earliest possible delivery, so the sender never fuses
// past a step at which its own message could wake another component.
func (c *Component) emit(n *Net, t vtime.Time, v any) {
	if c.wbuf != nil {
		c.wbuf.push(parOp{at: c.viewNow, kind: opDrive, net: n, t: t, v: v})
		return
	}
	c.sub.drive(n, c.name, t, v)
	if c.fastUntil != 0 {
		if arr := t.Add(n.Delay); arr < c.fastUntil {
			c.fastUntil = arr
		}
	}
}

// minTime reports the earliest timestamp in the component's inbox
// (ignoring any receive filter), or Infinity.
func (c *Component) inboxNextTime() vtime.Time { return c.inbox.NextTime() }

// saver returns the behaviour's StateSaver, or nil.
func (c *Component) saver() StateSaver {
	s, _ := c.behavior.(StateSaver)
	return s
}

// String implements fmt.Stringer.
func (c *Component) String() string {
	return fmt.Sprintf("component(%s, t=%v, %s)", c.name, c.localTime, c.status)
}
