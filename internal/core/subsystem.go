package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/timeline"
	"repro/internal/vtime"
)

// Errors reported by the subsystem scheduler.
var (
	// ErrStopped is returned by Run when Stop was called.
	ErrStopped = errors.New("core: run stopped")
	// ErrNoCheckpoint is reported when a rollback finds no
	// checkpoint at or before the requested time.
	ErrNoCheckpoint = errors.New("core: no checkpoint at or before requested time")
	// ErrNotCheckpointable is reported when a checkpoint is requested
	// and a live component's behaviour does not implement StateSaver.
	ErrNotCheckpointable = errors.New("core: component behaviour does not implement StateSaver")
	// ErrNotRunning is delivered to an InjectCtl reject callback when
	// the run loop exited before the control action could execute.
	ErrNotRunning = errors.New("core: subsystem run loop has exited")
)

// GateQuiescer is optionally implemented by gates that hold
// obligations toward the peer (outstanding safe-time asks). A
// subsystem finishing a finite-horizon run waits until every such
// gate reports Quiesced, so the peer is never stranded waiting for a
// grant that will no longer come.
type GateQuiescer interface {
	Quiesced() bool
}

// Gate is an external constraint on how far the subsystem may advance
// its virtual time — the scheduler side of a conservative channel.
// Before executing an action at time t the scheduler checks every
// gate; if some gate's Bound is below t it calls Request(t) and waits
// (the gate must call the subsystem's Wake when its bound rises).
type Gate interface {
	// Name identifies the gate in traces.
	Name() string
	// Bound returns the time up to which the subsystem may currently
	// advance, exclusive of nothing: advancing to exactly Bound() is
	// allowed. Must be cheap and safe to call from the scheduler
	// goroutine.
	Bound() vtime.Time
	// Request asks the gate, asynchronously, to raise its bound to at
	// least t. The gate calls Subsystem.Wake once the bound changes.
	Request(t vtime.Time)
}

// injectedItem is one queued external action: either a net drive or
// a control function (channel ingress processing, snapshot marks).
// Items are executed on the scheduler goroutine in arrival order.
type injectedItem struct {
	// drive fields (fn == nil)
	net string
	src string
	t   vtime.Time
	v   any

	// fn, when non-nil, is a control action. Returning true means
	// "retry me": the item is re-queued at the front, typically
	// because it requested a rollback that must complete first.
	fn func() bool

	// reject, when non-nil, marks a control action with a liveness
	// guarantee (InjectCtl): if the run loop exits before executing
	// fn, reject is called with ErrNotRunning instead of leaving the
	// item stranded in the queue.
	reject func(error)
}

// Subsystem is a fragment of the embedded system design under test,
// together with the scheduler object that enforces the local timing
// semantics. A Pia node contains one or more subsystems.
type Subsystem struct {
	name string

	comps map[string]*Component
	order []*Component
	nets  map[string]*Net

	now vtime.Time

	gates    []Gate
	external int // count of ingress sources that may still inject

	// Parallel execution (see parallel.go). workers is the pool
	// size (0 = sequential); fastOK gates the inline fast paths and
	// parallel rounds on the absence of a per-step hook. sharedPool,
	// when set, replaces the private per-run pool: rounds dispatch
	// into a host-wide pool fair-shared with other subsystems
	// (see pool.go).
	workers    int
	fastOK     bool
	workCh     chan parJob
	sharedPool *SharedPool
	poolWG     sync.WaitGroup
	roundWG    sync.WaitGroup
	active     []*Component // runnable index, lazily compacted
	members    []*Component // scratch: current round membership
	mergeRefs  []opRef      // scratch: merge ordering
	bufFree    []*workerBuf

	// Optimistic (Time Warp) execution: see optimistic.go. optimism
	// is the configured window W past the safe horizon within which
	// checkpointable components may be dispatched speculatively;
	// 0 (the default) keeps rounds purely conservative. effOpt is the
	// adaptively throttled window actually used, optCool the number
	// of rounds left before a fully collapsed window is retried, and
	// optClean the clean-round streak that earns regrowth.
	optimism    vtime.Duration
	optThrottle bool
	effOpt      vtime.Duration
	optCool     int
	optClean    int
	// Straggler-detection scratch: the generation stamp validating
	// per-component delivery minima, and the non-runnable components
	// touched by the current round's deliveries.
	specGen     uint64
	specTouched []*Component

	// extGen counts external requests (stop, injections, rollback
	// and checkpoint requests). Components cache it when resumed and
	// abandon their inline fast paths the moment it moves, so every
	// external request still gets absorbed at a scheduler loop top.
	extGen atomic.Uint64

	// cross-goroutine state, guarded by mu
	mu       sync.Mutex
	cond     *sync.Cond
	injected []injectedItem
	stopReq  bool
	rbTime   vtime.Time // pending rollback-to-before time; Infinity = none
	rbTag    string     // pending restore-by-snapshot-tag
	rbComp   string     // pending component-relative rollback: component name
	rbCompT  vtime.Time // ... and the local time it must rewind to or before
	wakeGen  uint64

	// published lower bounds, readable from any goroutine
	pubNow atomic.Int64
	pubKey atomic.Int64

	// checkpointing
	ckptTags    []string // pending checkpoint requests (tag per request)
	doneTags    map[string]bool
	ckptNextID  uint64
	checkpoints []*CheckpointSet
	ckptKeep    int
	ckptIncr    bool // incremental (dedupe unchanged states)
	autoCkpt    vtime.Duration
	lastAuto    vtime.Time

	// hooks
	Tracer       func(string)                               // optional trace sink
	OnStep       func(now vtime.Time)                       // called after every scheduling step
	OnRunlevel   func(comp, level string)                   // called on imperative runlevel switches
	OnCheckpoint func(cs *CheckpointSet)                    // called when a checkpoint is captured
	OnRestore    func(cs *CheckpointSet)                    // called after a restore completes
	OnPublish    func(now, key vtime.Time)                  // called on the scheduler goroutine after each publish
	OnDrive      func(net, src string, t vtime.Time, v any) // called for every net drive (waveform tracing)
	OnDepart     func(until vtime.Time)                     // called right before Run returns at a finite horizon
	OnStall      func()                                     // called right before the scheduler blocks waiting for input
	OnResume     func()                                     // called right after a stall ends

	// OnThrottleCollapse fires on the scheduler goroutine when the
	// optimistic throttle collapses the speculation window to zero
	// (a rollback storm: more than half the speculative cohort
	// aborted and the halving bottomed out). The flight recorder
	// treats it as a failure trigger. Unlike OnStep it does not
	// disable the fast paths: it only runs on an already-slow round.
	OnThrottleCollapse func(spec, aborted int)

	running bool
	fatal   error

	// accepting, guarded by mu, is true whenever a run loop is (or
	// will be) draining the injection queue: from construction until
	// a Run exit, and again from the next Run entry. While false,
	// InjectCtl rejects instead of queueing — the caller learns
	// immediately that no scheduler will ever service the action.
	accepting bool

	// departGate, guarded by mu, is an extra finite-horizon departure
	// condition (beyond the safe-time protocol's gatesDrained): Run
	// stalls at the horizon until it reports true. The node layer
	// uses it to hold the scheduler alive while resumable sessions
	// still retain unacked egress or owe a negotiated rewind — state
	// that, lost with a dead connection, needs this scheduler to
	// replay. Wake() re-evaluates it.
	departGate func(vtime.Time) bool

	stats Stats

	// mSched, when non-nil, holds the per-round metric gauges (see
	// metrics.go). Nil means metrics are disabled and the scheduler
	// loop pays one nil check per round, nothing more.
	mSched *schedMetrics

	// tlRec, when non-nil, is the timeline recorder wired in by
	// EnableTimeline (see timeline.go). All timeline emission rides
	// the nil-guarded hook chain above, so the disabled path costs
	// nothing beyond the existing hook nil checks.
	tlRec *timeline.Recorder

	// attrib, when non-nil, is the per-component wall-cost
	// attribution sink wired in by EnableCostAttribution (see
	// attrib.go). Disabled path: one nil check per dispatch in
	// stepTimed, no stamps, no allocation.
	attrib *costAttrib
}

// Stats accumulates scheduler counters for benchmarks and reports.
type Stats struct {
	Steps       int64 // component resumptions
	Deliveries  int64 // messages handed to Recv
	Drives      int64 // net drives
	Stalls      int64 // times the scheduler waited on a gate or input
	Checkpoints int64
	Restores    int64
	ParRounds   int64 // parallel rounds dispatched to the worker pool
	BytesOnNets int64

	// Optimistic (Time Warp) counters: see optimistic.go.
	SpecRounds  int64 // rounds that dispatched at least one speculative member
	SpecMembers int64 // components dispatched speculatively past the horizon
	SpecCommits int64 // speculative dispatches whose effects committed
	Rollbacks   int64 // speculative dispatches undone by stragglers
	RolledBack  int64 // buffered effects discarded by those rollbacks
}

// NewSubsystem creates an empty subsystem.
func NewSubsystem(name string) *Subsystem {
	s := &Subsystem{
		name:      name,
		comps:     make(map[string]*Component),
		nets:      make(map[string]*Net),
		rbTime:    vtime.Infinity,
		ckptKeep:  8,
		accepting: true,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Name returns the subsystem's name.
func (s *Subsystem) Name() string { return s.name }

// Now returns the subsystem's virtual time. It is always <= the local
// time of every component in the subsystem.
func (s *Subsystem) Now() vtime.Time { return s.now }

// Stats returns a copy of the scheduler counters. Safe from any
// goroutine: the counters are written atomically (worker goroutines
// and components on the inline fast path update them too).
func (s *Subsystem) Stats() Stats {
	return Stats{
		Steps:       atomic.LoadInt64(&s.stats.Steps),
		Deliveries:  atomic.LoadInt64(&s.stats.Deliveries),
		Drives:      atomic.LoadInt64(&s.stats.Drives),
		Stalls:      atomic.LoadInt64(&s.stats.Stalls),
		Checkpoints: atomic.LoadInt64(&s.stats.Checkpoints),
		Restores:    atomic.LoadInt64(&s.stats.Restores),
		ParRounds:   atomic.LoadInt64(&s.stats.ParRounds),
		BytesOnNets: atomic.LoadInt64(&s.stats.BytesOnNets),
		SpecRounds:  atomic.LoadInt64(&s.stats.SpecRounds),
		SpecMembers: atomic.LoadInt64(&s.stats.SpecMembers),
		SpecCommits: atomic.LoadInt64(&s.stats.SpecCommits),
		Rollbacks:   atomic.LoadInt64(&s.stats.Rollbacks),
		RolledBack:  atomic.LoadInt64(&s.stats.RolledBack),
	}
}

// SetWorkers sets the size of the parallel-round worker pool: with
// n > 0, Run dispatches every component whose next action falls
// strictly inside the safe horizon to n worker goroutines and merges
// their output deterministically. 0 (the default) keeps the
// scheduler fully sequential. Only legal between runs.
func (s *Subsystem) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured worker-pool size (0 = sequential).
func (s *Subsystem) Workers() int { return s.workers }

// SetPool attaches the subsystem to a shared worker pool: parallel
// rounds dispatch into p and fair-share its workers with every other
// attached subsystem, instead of starting a private pool. Overrides
// SetWorkers while set; pass nil to detach (the caller should also
// p.Forget(s) to drop the pool-side queue). Only legal between runs.
func (s *Subsystem) SetPool(p *SharedPool) { s.sharedPool = p }

// poolSize is the effective worker count for round-shaping
// heuristics, whichever pool flavor is in use.
func (s *Subsystem) poolSize() int {
	if s.sharedPool != nil {
		return s.sharedPool.size
	}
	return s.workers
}

// Components returns the subsystem's components in creation order.
func (s *Subsystem) Components() []*Component {
	out := make([]*Component, len(s.order))
	copy(out, s.order)
	return out
}

// Component returns the named component, or nil.
func (s *Subsystem) Component(name string) *Component { return s.comps[name] }

// Net returns the named net, or nil.
func (s *Subsystem) Net(name string) *Net { return s.nets[name] }

// Nets returns all nets (unordered).
func (s *Subsystem) Nets() []*Net {
	out := make([]*Net, 0, len(s.nets))
	for _, n := range s.nets {
		out = append(out, n)
	}
	return out
}

// NewComponent adds a component with the given behaviour.
func (s *Subsystem) NewComponent(name string, b Behavior) (*Component, error) {
	if s.running {
		return nil, fmt.Errorf("core: cannot add component %q while running", name)
	}
	if _, dup := s.comps[name]; dup {
		return nil, fmt.Errorf("core: duplicate component %q", name)
	}
	if b == nil {
		return nil, fmt.Errorf("core: component %q has nil behaviour", name)
	}
	c := &Component{
		name:         name,
		sub:          s,
		behavior:     b,
		ports:        make(map[string]*Port),
		ifaces:       make(map[string]*Interface),
		status:       statusNew,
		index:        len(s.order),
		token:        make(chan tokenMsg),
		parked:       make(chan struct{}),
		recvDeadline: vtime.Infinity,
	}
	c.proc = &Proc{c}
	s.comps[name] = c
	s.order = append(s.order, c)
	s.activate(c)
	return c, nil
}

// AddPort adds a named port to the component.
func (c *Component) AddPort(name string) (*Port, error) {
	if _, dup := c.ports[name]; dup {
		return nil, fmt.Errorf("core: duplicate port %s.%s", c.name, name)
	}
	p := &Port{Name: name, comp: c}
	c.ports[name] = p
	return p, nil
}

// AddInterface groups existing ports (creating any that do not exist)
// under a named interface.
func (c *Component) AddInterface(name string, ports ...string) (*Interface, error) {
	if _, dup := c.ifaces[name]; dup {
		return nil, fmt.Errorf("core: duplicate interface %s.%s", c.name, name)
	}
	for _, pn := range ports {
		if c.ports[pn] == nil {
			if _, err := c.AddPort(pn); err != nil {
				return nil, err
			}
		}
		c.ports[pn].iface = name
	}
	ifc := &Interface{Name: name, Ports: append([]string(nil), ports...)}
	c.ifaces[name] = ifc
	return ifc, nil
}

// NewNet creates a net with the given propagation delay.
func (s *Subsystem) NewNet(name string, delay vtime.Duration) (*Net, error) {
	if _, dup := s.nets[name]; dup {
		return nil, fmt.Errorf("core: duplicate net %q", name)
	}
	if delay < 0 {
		return nil, fmt.Errorf("core: net %q has negative delay", name)
	}
	n := &Net{Name: name, Delay: delay, sub: s}
	s.nets[name] = n
	return n, nil
}

// Connect attaches the given ports to the net.
func (s *Subsystem) Connect(n *Net, ports ...*Port) error {
	if n.sub != s {
		return fmt.Errorf("core: net %s belongs to another subsystem", n.Name)
	}
	for _, p := range ports {
		if p.comp != nil && p.comp.sub != s {
			return fmt.Errorf("core: port %s.%s belongs to another subsystem", p.comp.name, p.Name)
		}
		if err := n.attach(p); err != nil {
			return err
		}
	}
	return nil
}

// AttachHidden adds a hidden port to the net and binds it to a sink.
// Hidden ports are how channel components listen to a split net: each
// net split across subsystems includes an extra hidden port that
// connects bus events to the channel.
func (s *Subsystem) AttachHidden(n *Net, name string, owner string, sink Sink) (*Port, error) {
	if n.sub != s {
		return nil, fmt.Errorf("core: net %s belongs to another subsystem", n.Name)
	}
	p := &Port{Name: name, hidden: true, sink: sink, sinkOwner: owner}
	if err := n.attach(p); err != nil {
		return nil, err
	}
	return p, nil
}

// AddGate registers an advancement constraint (conservative channel).
func (s *Subsystem) AddGate(g Gate) { s.gates = append(s.gates, g) }

// AddExternal registers an ingress source: while any are registered
// the scheduler waits for injections instead of terminating when it
// runs out of local work.
func (s *Subsystem) AddExternal() {
	s.mu.Lock()
	s.external++
	s.mu.Unlock()
	s.Wake()
}

// RemoveExternal unregisters an ingress source (e.g. the peer
// finished).
func (s *Subsystem) RemoveExternal() {
	s.mu.Lock()
	if s.external > 0 {
		s.external--
	}
	s.mu.Unlock()
	s.Wake()
}

// Wake nudges a scheduler that is waiting for external input or a
// gate grant. Safe from any goroutine.
func (s *Subsystem) Wake() {
	s.mu.Lock()
	s.wakeGen++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Stop requests that Run return as soon as the current component
// parks. Safe from any goroutine.
func (s *Subsystem) Stop() {
	s.extGen.Add(1)
	s.mu.Lock()
	s.stopReq = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// InjectDrive injects a net drive from outside the subsystem (channel
// ingress): the named net will carry value v driven at virtual time t
// by source src. Safe from any goroutine; takes effect at the next
// scheduling step, in arrival order relative to other injections.
func (s *Subsystem) InjectDrive(net, src string, t vtime.Time, v any) error {
	s.extGen.Add(1)
	s.mu.Lock()
	if s.nets[net] == nil {
		s.mu.Unlock()
		return fmt.Errorf("core: inject into unknown net %q", net)
	}
	s.injected = append(s.injected, injectedItem{net: net, src: src, t: t, v: v})
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// InjectFunc queues a control function to run on the scheduler
// goroutine, ordered with other injections. The function may use the
// scheduler-context APIs (DriveNow, Now, CaptureNow, RequestRollback)
// and returns true to be retried after the scheduler has handled any
// rollback it requested. Safe from any goroutine.
func (s *Subsystem) InjectFunc(fn func() bool) {
	s.extGen.Add(1)
	s.mu.Lock()
	s.injected = append(s.injected, injectedItem{fn: fn})
	s.cond.Broadcast()
	s.mu.Unlock()
}

// InjectCtl queues fn like InjectFunc but with a liveness guarantee:
// either a run loop executes fn, or onDead is called (once, with
// ErrNotRunning) — a control action is never silently stranded in
// the queue of a scheduler that has already exited. Exits drain the
// queue first, so an action queued while the loop is live always
// runs. Safe from any goroutine.
func (s *Subsystem) InjectCtl(fn func() bool, onDead func(error)) {
	s.extGen.Add(1)
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		if onDead != nil {
			onDead(ErrNotRunning)
		}
		return
	}
	s.injected = append(s.injected, injectedItem{fn: fn, reject: onDead})
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SetDepartGate installs an extra departure condition for finite-
// horizon runs: once local work is exhausted and the safe-time
// protocol has drained, Run additionally stalls until gate(until)
// reports true. Call Wake() whenever the gate's verdict may have
// changed. A nil gate removes the condition. Safe from any goroutine.
func (s *Subsystem) SetDepartGate(gate func(vtime.Time) bool) {
	s.mu.Lock()
	s.departGate = gate
	s.mu.Unlock()
	s.Wake()
}

// DriveNow drives a net immediately from scheduler context (a control
// injection or scheduler hook). Hidden ports are skipped, exactly as
// for InjectDrive. Never call it from component code or other
// goroutines.
func (s *Subsystem) DriveNow(net, src string, t vtime.Time, v any) error {
	n := s.nets[net]
	if n == nil {
		return fmt.Errorf("core: drive of unknown net %q", net)
	}
	s.driveLocal(n, src, t, v)
	return nil
}

// RequestRollback asks the scheduler to restore the latest checkpoint
// whose cut time is <= t (a straggler with timestamp t arrived on an
// optimistic channel). Safe from any goroutine.
func (s *Subsystem) RequestRollback(t vtime.Time) {
	s.extGen.Add(1)
	s.mu.Lock()
	if t < s.rbTime {
		s.rbTime = t
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// RequestRollbackComponent asks the scheduler to restore the latest
// checkpoint in which the named component's local time is <= t. Used
// by the interrupt-consistency machinery: the component that
// optimistically ran past an interrupt must itself rewind behind it,
// regardless of where the subsystem cut fell. Safe from any
// goroutine.
func (s *Subsystem) RequestRollbackComponent(comp string, t vtime.Time) {
	s.extGen.Add(1)
	s.mu.Lock()
	if s.rbComp == "" || t < s.rbCompT {
		s.rbComp, s.rbCompT = comp, t
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// RequestRestoreTag asks the scheduler to restore the checkpoint
// captured for the given snapshot tag (distributed coordinated
// restore). Safe from any goroutine.
func (s *Subsystem) RequestRestoreTag(tag string) {
	s.extGen.Add(1)
	s.mu.Lock()
	s.rbTag = tag
	s.cond.Broadcast()
	s.mu.Unlock()
}

// CheckpointByTag returns the retained checkpoint captured for the
// given snapshot tag, or nil.
func (s *Subsystem) CheckpointByTag(tag string) *CheckpointSet {
	for i := len(s.checkpoints) - 1; i >= 0; i-- {
		if s.checkpoints[i].Tag == tag {
			return s.checkpoints[i]
		}
	}
	return nil
}

// PublishedTimes returns the last published (subsystem time, next
// event key) pair. Both are monotone lower bounds on the subsystem's
// actual progress and are safe to read from any goroutine; the
// safe-time protocol is built on them.
func (s *Subsystem) PublishedTimes() (now, key vtime.Time) {
	return vtime.Time(s.pubNow.Load()), vtime.Time(s.pubKey.Load())
}

// tracef emits a trace line when a Tracer is installed.
func (s *Subsystem) tracef(format string, args ...any) {
	if s.Tracer != nil {
		s.Tracer(fmt.Sprintf(format, args...))
	}
}

func (s *Subsystem) noteRunlevel(c *Component, level string) {
	if s.OnRunlevel != nil {
		s.OnRunlevel(c.name, level)
	}
	s.tracef("%s runlevel -> %s", c.name, level)
}

// drive fans a value out to every port on the net except the driver.
// Called with the run token held (from a component's Send) or on the
// scheduler goroutine (injected drives).
func (s *Subsystem) drive(n *Net, src string, t vtime.Time, v any) {
	s.driveFrom(n, nil, src, t, v, false)
}

// driveLocal fans out an injected (channel ingress) drive. Hidden
// ports are skipped: a value that arrived over a channel must not be
// reflected back out by the channel components listening on the same
// net fragment — the channel component only delivers into the
// subsystem.
func (s *Subsystem) driveLocal(n *Net, src string, t vtime.Time, v any) {
	s.driveFrom(n, nil, src, t, v, true)
}

func (s *Subsystem) driveFrom(n *Net, driver *Port, src string, t vtime.Time, v any, skipHidden bool) {
	n.lastValue, n.lastTime, n.lastSource = v, t, src
	atomic.AddInt64(&s.stats.Drives, 1)
	if s.OnDrive != nil {
		s.OnDrive(n.Name, src, t, v)
	}
	deliver := t.Add(n.Delay)
	for _, pt := range n.ports {
		if pt == driver {
			continue
		}
		if pt.comp != nil && pt.comp.name == src {
			continue // a component does not hear its own drive
		}
		if pt.hidden {
			if !skipHidden && pt.sink != nil {
				pt.sink(Msg{Time: deliver, Sent: t, Port: pt.Name, Net: n.Name, Value: v, Source: src})
			}
			continue
		}
		// The fanout pushes one event value per listener straight into
		// the inbox's struct-of-arrays columns; nothing is heap
		// allocated once those columns reach steady-state capacity.
		pt.comp.inbox.Push(event.Event{
			Time:      deliver,
			Kind:      event.KindNet,
			Component: pt.comp.name,
			Port:      pt.Name,
			Net:       n.Name,
			Value:     v,
			Source:    src,
		})
		if !pt.comp.active {
			s.activate(pt.comp)
		}
	}
}

// activate inserts c into the runnable index. Called wherever a
// component's key may have turned finite: creation, an inbox push,
// returning from a resume, restore, reload.
func (s *Subsystem) activate(c *Component) {
	if !c.active {
		c.active = true
		s.active = append(s.active, c)
	}
}

// resetActive rebuilds the runnable index from scratch (restores and
// reloads invalidate cached keys wholesale).
func (s *Subsystem) resetActive() {
	s.active = s.active[:0]
	for _, c := range s.order {
		c.active = false
	}
	for _, c := range s.order {
		s.activate(c)
	}
}

// yield is the component side of the scheduling handshake: announce
// the park on the component's own channel, then wait for the next
// run token.
func (s *Subsystem) yield(c *Component) tokenMsg {
	c.parked <- struct{}{}
	return <-c.token
}

// resume hands the run token to c and waits until it parks again.
// Parallel-round workers call it concurrently for distinct
// components; the handshake is entirely per component.
func (s *Subsystem) resume(c *Component, tok tokenMsg) {
	if c.status == statusNew {
		s.startGoroutine(c)
	}
	c.status = statusRunning
	c.token <- tok
	<-c.parked
}

// startGoroutine launches the component's behaviour wrapper.
func (s *Subsystem) startGoroutine(c *Component) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, killed := r.(killPanic); !killed {
					c.err = fmt.Errorf("core: component %s panicked: %v", c.name, r)
					c.status = statusDone
				}
				// killPanic: status is managed by the killer.
			}
			c.parked <- struct{}{}
		}()
		tok := <-c.token
		if tok.kill {
			panic(killPanic{c.name})
		}
		err := c.behavior.Run(c.proc)
		c.err = err
		c.status = statusDone
	}()
}

// kill unwinds a parked, live component goroutine.
func (s *Subsystem) kill(c *Component) {
	switch c.status {
	case statusDone:
		return
	case statusNew:
		// Goroutine not started; nothing to unwind.
		return
	default:
		c.token <- tokenMsg{kill: true}
		<-c.parked
	}
}

// Teardown kills every live component goroutine. Call it when
// abandoning a subsystem whose Run returned early (ErrStopped or a
// gate error) to avoid leaking goroutines.
func (s *Subsystem) Teardown() {
	for _, c := range s.order {
		s.kill(c)
		c.status = statusDone
	}
}

// Run executes the subsystem until virtual time `until`, until all
// work is exhausted, or until Stop is called. With until ==
// vtime.Infinity, exhaustion terminates the components (their Recv
// calls return ok=false once no more messages can ever arrive) and
// Run returns nil. With a finite until, components stay parked and Run
// may be called again to continue.
func (s *Subsystem) Run(until vtime.Time) error {
	if s.running {
		return fmt.Errorf("core: subsystem %s already running", s.name)
	}
	s.running = true
	s.mu.Lock()
	s.accepting = true
	s.mu.Unlock()
	defer func() {
		s.running = false
		// End injection acceptance (error paths exit without
		// tryExit) and fail any guaranteed control actions still
		// queued: their callers must not wait on a dead scheduler.
		// Plain injections stay queued for a future Run, as before.
		s.mu.Lock()
		s.accepting = false
		var rejected []func(error)
		kept := s.injected[:0]
		for _, it := range s.injected {
			if it.reject != nil {
				rejected = append(rejected, it.reject)
			} else {
				kept = append(kept, it)
			}
		}
		s.injected = kept
		s.mu.Unlock()
		for _, r := range rejected {
			r(ErrNotRunning)
		}
	}()

	// The inline fast paths and parallel rounds fuse or reorder
	// scheduling steps; a per-step hook (detail switchpoints, the
	// debugger) needs to observe every one, so its presence pins the
	// scheduler to the classic step-at-a-time path.
	s.fastOK = s.OnStep == nil
	s.prepareLookahead()
	// The adaptive throttle starts each run at the configured window
	// and re-earns it after rollback storms (see optimistic.go).
	s.effOpt = s.optimism
	s.optCool, s.optClean = 0, 0
	if s.sharedPool != nil {
		// Rounds dispatch into the shared pool; nothing per-run to
		// start or join — roundWG already fences every round.
	} else if s.workers > 0 {
		s.startPool()
		defer s.stopPool()
	}

	for {
		// Absorb cross-goroutine requests. Rollbacks are handled
		// before any queued injection is routed: an optimistic
		// straggler must first rewind the subsystem and only then be
		// delivered, or the restore would wipe it out.
		s.mu.Lock()
		stop := s.stopReq
		s.stopReq = false
		rb := s.rbTime
		s.rbTime = vtime.Infinity
		rbTag := s.rbTag
		s.rbTag = ""
		rbComp, rbCompT := s.rbComp, s.rbCompT
		s.rbComp = ""
		var inj []injectedItem
		var tags []string
		if rb == vtime.Infinity && rbTag == "" && rbComp == "" {
			inj = s.injected
			s.injected = nil
			tags = s.ckptTags
			s.ckptTags = nil
		}
		s.mu.Unlock()

		if stop {
			return ErrStopped
		}
		if s.fatal != nil {
			return s.fatal
		}
		if rbTag != "" {
			cs := s.CheckpointByTag(rbTag)
			if cs == nil {
				return fmt.Errorf("%w (tag %q)", ErrNoCheckpoint, rbTag)
			}
			if err := s.RestoreCheckpoint(cs); err != nil {
				return err
			}
			continue
		}
		if rb != vtime.Infinity {
			if err := s.restoreBefore(rb); err != nil {
				return err
			}
			continue
		}
		if rbComp != "" {
			if err := s.restoreComponentBefore(rbComp, rbCompT); err != nil {
				return err
			}
			continue
		}

		// Route injections in arrival order. A control item that
		// requests a rollback (optimistic straggler) interrupts the
		// batch: it and everything after it are re-queued, the
		// restore runs first, and routing resumes afterwards.
		for idx, d := range inj {
			retry := false
			if d.fn != nil {
				retry = d.fn()
			} else if n := s.nets[d.net]; n != nil {
				s.driveLocal(n, d.src, d.t, d.v)
			}
			s.mu.Lock()
			interrupted := s.rbTime != vtime.Infinity || s.rbTag != ""
			if interrupted || retry {
				rest := inj[idx+1:]
				if retry {
					rest = inj[idx:]
				}
				s.injected = append(append([]injectedItem(nil), rest...), s.injected...)
			}
			s.mu.Unlock()
			if interrupted || retry {
				break
			}
		}
		s.mu.Lock()
		interrupted := s.rbTime != vtime.Infinity || s.rbTag != ""
		s.mu.Unlock()
		if interrupted {
			continue
		}

		// Capture pending checkpoints: every component is parked
		// here, so this is the earliest point after the request at
		// which all images can be taken, and necessarily before any
		// component receives another message (Pia's domino rule).
		for _, tag := range tags {
			if _, err := s.capture(tag); err != nil {
				return err
			}
		}
		if s.autoCkpt > 0 && s.now >= s.lastAuto.Add(s.autoCkpt) {
			s.lastAuto = s.now
			if _, err := s.capture(""); err != nil {
				return err
			}
		}

		// Choose the next action: the component with the smallest key,
		// and publish the (monotone) lower bounds other goroutines —
		// notably the safe-time protocol — may rely on. The scan also
		// maintains the runnable index, caches the runner-up key (the
		// fast-path bound) and computes the safe horizon for a
		// parallel round.
		pi := s.scan()
		next, key := pi.best, pi.key
		s.pubNow.Store(int64(s.now))
		s.pubKey.Store(int64(key))
		if s.OnPublish != nil {
			s.OnPublish(s.now, key)
		}
		if s.mSched != nil {
			s.sampleMetrics()
		}

		// A finite-horizon run ends when no local action remains at or
		// before the horizon; with external channels we must first
		// drain the safe-time protocol — every gate's bound must
		// clear the horizon (so nothing can still arrive inside it)
		// and every obligation toward peers must be met (so peers are
		// not stranded mid-ratchet by our departure).
		if until != vtime.Infinity && key > until {
			if s.hasExternal() && !s.gatesDrained(until) {
				s.stall()
				continue
			}
			// The departure gate holds the scheduler at the horizon
			// while the session layer still has business that may
			// need it — unacked retained egress, an outage mid-
			// resume, a negotiated rewind. Leaving early would
			// strand a later rewind with no run loop to service it.
			s.mu.Lock()
			gate := s.departGate
			s.mu.Unlock()
			if gate != nil && !gate(until) {
				s.stall()
				continue
			}
			if !s.tryExit() {
				continue
			}
			// Claim the horizon only when nothing external can still
			// deliver inside it: with optimistic ingress channels the
			// subsystem's time must stay at its last processed event,
			// or a late message would wrongly read as a straggler.
			if !s.hasExternal() {
				s.now = vtime.Max(s.now, until)
				for _, c := range s.order {
					if c.status == statusRecv && c.localTime < s.now {
						c.localTime = s.now
					}
				}
			}
			// Announce the departure so the channel layer can push a
			// final grant covering the horizon: a peer whose ask is
			// still in flight would otherwise wait forever on a
			// scheduler that has already left.
			if s.OnDepart != nil {
				s.OnDepart(until)
			}
			return nil
		}

		if key == vtime.Infinity {
			if s.hasExternal() {
				// Stalled on the outside world.
				s.stall()
				continue
			}
			if s.signalEOF() {
				continue // a component was told the simulation ended
			}
			if !s.tryExit() {
				continue
			}
			// Everything done or signalled: unwind survivors and exit.
			for _, c := range s.order {
				s.kill(c)
				c.status = statusDone
			}
			return s.collectErr()
		}

		// Conservative gates: may we advance to key?
		if blocked := s.gateBlocked(key); blocked {
			s.stall()
			continue
		}

		// Parallel round: when more than one component's next action
		// falls strictly inside the safe horizon, dispatch them all
		// to the worker pool and merge their effects in canonical
		// order (see parallel.go).
		if (s.workCh != nil || s.sharedPool != nil) && s.fastOK && s.runParallelRound(pi, until) {
			continue
		}

		// Execute the step. Components idle in Recv experience the
		// passage of virtual time: their local times track subsystem
		// time, preserving the invariant that system time never
		// exceeds any local time.
		s.now = vtime.Max(s.now, key)
		for _, c := range s.order {
			if c.status == statusRecv && c.localTime < s.now {
				c.localTime = s.now
			}
		}
		next.viewNow = s.now
		next.fastGen = s.extGen.Load()
		next.fastUntil = 0
		if s.fastOK {
			next.fastUntil = s.seqFastBound(pi, until)
		}
		s.stepTimed(next, key)
		s.activate(next)
		// A fused run of inline actions ends past the entry key:
		// catch the subsystem clock (and idle local times) up to the
		// last action actually executed, exactly where the
		// step-at-a-time scheduler would have left them.
		if next.viewNow > s.now {
			s.now = next.viewNow
			for _, c := range s.order {
				if c.status == statusRecv && c.localTime < s.now {
					c.localTime = s.now
				}
			}
		}

		if next.err != nil && next.status == statusDone {
			s.fatal = fmt.Errorf("core: component %s failed: %w", next.name, next.err)
		}
		if s.OnStep != nil {
			s.OnStep(s.now)
		}
	}
}

// seqFastBound computes the exclusive bound below which the picked
// component may keep acting inline without handing the token back:
// the runner-up's key (adjusted for the creation-order tie-break),
// every gate bound, the run horizon, and the next automatic
// checkpoint cut. Anything the component does strictly below this
// bound is exactly what the step-at-a-time scheduler would have done
// next anyway.
func (s *Subsystem) seqFastBound(pi planInfo, until vtime.Time) vtime.Time {
	b := vtime.Infinity
	if pi.key2 != vtime.Infinity {
		b = pi.key2
		if pi.best.index < pi.idx2 {
			// The picked component wins same-key ties against the
			// runner-up, so it may still act at key2 itself.
			b = pi.key2.Add(1)
		}
	}
	for _, g := range s.gates {
		if gb := g.Bound().Add(1); gb < b {
			b = gb
		}
	}
	if until != vtime.Infinity {
		if u := until.Add(1); u < b {
			b = u
		}
	}
	if s.autoCkpt > 0 {
		if t := s.lastAuto.Add(s.autoCkpt); t < b {
			b = t
		}
	}
	return b
}

// pick returns the component with the smallest scheduling key and the
// key itself. Ties break on creation order for determinism.
func (s *Subsystem) pick() (*Component, vtime.Time) {
	var best *Component
	min := vtime.Infinity
	for _, c := range s.order {
		if k := c.key(); k < min {
			min, best = k, c
		}
	}
	return best, min
}

// gatesDrained reports whether the subsystem may leave a finite
// horizon: every gate bound is beyond it (issuing asks where not) and
// every gate with obligations has discharged them.
func (s *Subsystem) gatesDrained(until vtime.Time) bool {
	ok := true
	for _, g := range s.gates {
		if g.Bound() <= until {
			g.Request(until.Add(1))
			ok = false
			continue
		}
		if q, isQ := g.(GateQuiescer); isQ && !q.Quiesced() {
			ok = false
		}
	}
	return ok
}

// gateBlocked checks all gates against the proposed advance; if any
// bound is too low it issues async requests and reports true.
func (s *Subsystem) gateBlocked(t vtime.Time) bool {
	blocked := false
	for _, g := range s.gates {
		if g.Bound() < t {
			g.Request(t)
			blocked = true
		}
	}
	return blocked
}

// step resumes component c, delivering a message if it is parked in
// Recv.
func (s *Subsystem) step(c *Component, key vtime.Time) {
	// During a parallel round, step/delivery counts are buffered per
	// member and folded in at merge time for committed members only:
	// a rolled-back speculation replays later and must not be counted
	// twice (or at all, if the replay diverges).
	if b := c.wbuf; b != nil {
		b.steps++
	} else {
		atomic.AddInt64(&s.stats.Steps, 1)
	}
	switch c.status {
	case statusNew, statusRunnable:
		s.resume(c, tokenMsg{ok: true})
	case statusRecv:
		if e, ok := c.nextDeliverable(); ok && vtime.Max(e.Time, c.localTime) == key {
			e, _ = c.popDeliverable()
			msg := c.msgFromEvent(e)
			if b := c.wbuf; b != nil {
				b.delivs++
			} else {
				atomic.AddInt64(&s.stats.Deliveries, 1)
			}
			s.resume(c, tokenMsg{ok: true, msg: msg})
			return
		}
		// Deadline expiry: a negative observation ("nothing arrived
		// before the deadline") that a straggler can invalidate —
		// recorded so the member never passes for inert.
		if b := c.wbuf; b != nil {
			b.expired = true
		}
		c.localTime = vtime.Max(c.localTime, c.recvDeadline)
		s.resume(c, tokenMsg{ok: false})
	default:
		panic(fmt.Sprintf("core: scheduled component %s in state %v", c.name, c.status))
	}
}

// signalEOF resumes one not-yet-signalled Recv-blocked component with
// ok=false, in deterministic order. Returns false when none remain.
func (s *Subsystem) signalEOF() bool {
	for _, c := range s.order {
		if c.status == statusRecv && !c.eofSignaled {
			c.eofSignaled = true
			c.viewNow = s.now
			c.fastUntil = 0
			s.resume(c, tokenMsg{ok: false})
			s.activate(c)
			return true
		}
	}
	return false
}

// hasExternal reports whether ingress sources remain registered.
func (s *Subsystem) hasExternal() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.external > 0
}

// stall announces the impending block (the channel layer flushes its
// coalesced egress here — peers may be waiting on exactly those
// messages) and then waits. OnStall runs outside s.mu, so hooks may
// send on transports freely; a peer reply racing in between lands in
// the injection queue and makes waitForWake return immediately.
func (s *Subsystem) stall() {
	atomic.AddInt64(&s.stats.Stalls, 1)
	if s.OnStall != nil {
		s.OnStall()
	}
	s.waitForWake()
	if s.OnResume != nil {
		s.OnResume()
	}
}

// tryExit atomically ends injection acceptance for a clean run exit.
// Any external request queued concurrently — an injection, a pending
// checkpoint, a stop, a rollback — aborts the exit (returns false) so
// the loop absorbs it first; an InjectCtl call that loses the race
// instead observes accepting == false and rejects itself. Together
// these guarantee a guaranteed control action is never stranded.
func (s *Subsystem) tryExit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.injected) > 0 || len(s.ckptTags) > 0 || s.stopReq ||
		s.rbTime != vtime.Infinity || s.rbTag != "" || s.rbComp != "" {
		return false
	}
	s.accepting = false
	return true
}

// waitForWake blocks until something changes: an injection, a gate
// update (Wake), a stop, or a rollback request.
func (s *Subsystem) waitForWake() {
	s.mu.Lock()
	gen := s.wakeGen
	for len(s.injected) == 0 && len(s.ckptTags) == 0 && !s.stopReq && s.rbTime == vtime.Infinity && s.rbTag == "" && s.rbComp == "" && s.wakeGen == gen {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// collectErr aggregates terminal component errors.
func (s *Subsystem) collectErr() error {
	if s.fatal != nil {
		return s.fatal
	}
	for _, c := range s.order {
		if c.err != nil {
			return fmt.Errorf("core: component %s failed: %w", c.name, c.err)
		}
	}
	return nil
}

// ReplaceBehavior swaps a component's behaviour for a new instance —
// the runtime half of recompiling and reloading a component without
// restarting the simulator. Only legal between runs. When both the
// old and new behaviours support state saving and transfer is true,
// the old state is carried over; the component's local time is
// preserved either way and its goroutine restarts in the new Run.
func (s *Subsystem) ReplaceBehavior(name string, b Behavior, transfer bool) error {
	if s.running {
		return fmt.Errorf("core: cannot replace behaviour of %q while running", name)
	}
	c := s.comps[name]
	if c == nil {
		return fmt.Errorf("core: no component %q", name)
	}
	if b == nil {
		return fmt.Errorf("core: nil behaviour for %q", name)
	}
	var state []byte
	if transfer {
		oldSv, oldOK := c.behavior.(StateSaver)
		newSv, newOK := b.(StateSaver)
		if oldOK && newOK {
			st, err := oldSv.SaveState()
			if err != nil {
				return fmt.Errorf("core: reload of %s: save: %w", name, err)
			}
			if err := newSv.RestoreState(st); err != nil {
				return fmt.Errorf("core: reload of %s: restore: %w", name, err)
			}
			state = st
		}
	}
	_ = state
	s.kill(c)
	c.behavior = b
	c.status = statusNew
	c.token = make(chan tokenMsg)
	c.err = nil
	c.eofSignaled = false
	c.recvPorts = nil
	c.recvDeadline = vtime.Infinity
	s.activate(c)
	s.tracef("%s behaviour reloaded (transfer=%v)", name, transfer)
	return nil
}

// NextEventTime returns the earliest time at which the subsystem
// could act (its next scheduling key), or Infinity when idle. Used by
// the safe-time protocol.
func (s *Subsystem) NextEventTime() vtime.Time {
	_, key := s.pick()
	return key
}
