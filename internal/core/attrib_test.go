package core

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

func TestAttributionAccountingZeroAllocs(t *testing.T) {
	s := NewSubsystem("alloc")
	c, err := s.NewComponent("comp", &consumer{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.EnableCostAttribution(reg, 3)
	s.EnableCostAttribution(reg, 9) // idempotent
	a := s.attrib
	if a == nil || a.topN != 3 {
		t.Fatalf("attrib = %+v", a)
	}
	a.note(s, c, 100) // first note creates the histogram
	if n := testing.AllocsPerRun(200, func() {
		a.note(s, c, 250)
	}); n != 0 {
		t.Fatalf("steady-state attribution accounting = %v allocs/op, want 0", n)
	}
	if c.costNS.Load() < 100+200*250 {
		t.Fatalf("costNS = %d", c.costNS.Load())
	}
}

func TestAttributionCollectorAndTopN(t *testing.T) {
	s, _, _ := randomParallelSystem(7)
	s.SetWorkers(2)
	reg := metrics.NewRegistry()
	s.EnableCostAttribution(reg, 2)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var totals, tops, hists int
	var prevTop int64 = -1
	for _, sm := range snap {
		switch {
		case strings.HasPrefix(sm.Name, "pia_comp_cost_ns_total{"):
			totals++
			if sm.Kind != metrics.KindCounter || sm.Value <= 0 {
				t.Fatalf("bad total sample %+v", sm)
			}
		case strings.HasPrefix(sm.Name, "pia_comp_cost_top{"):
			tops++
			if sm.Kind != metrics.KindGauge {
				t.Fatalf("bad top sample %+v", sm)
			}
			// Snapshot sorts by name, so rank=1 precedes rank=2 and
			// costs must be non-increasing.
			if prevTop >= 0 && sm.Value > prevTop {
				t.Fatalf("top-N not ranked: %d then %d", prevTop, sm.Value)
			}
			prevTop = sm.Value
		case strings.HasPrefix(sm.Name, "pia_comp_cost_ns{"):
			hists++
			if sm.Kind != metrics.KindHistogram || len(sm.Buckets) == 0 {
				t.Fatalf("bad histogram sample %+v", sm)
			}
		}
	}
	if totals == 0 || hists == 0 {
		t.Fatalf("attribution emitted %d totals, %d histograms", totals, hists)
	}
	if tops != 2 {
		t.Fatalf("top-N gauges = %d, want 2", tops)
	}
}

// TestAttributionDigestUnchanged: attaching cost attribution must not
// perturb the virtual outcome — delivery counts, drive digest, and
// final virtual time stay bit-identical, across sequential, parallel,
// and optimistic modes.
func TestAttributionDigestUnchanged(t *testing.T) {
	run := func(seed int64, workers int, optimism vtime.Duration, attrib bool) string {
		s, cons, _ := randomParallelSystem(seed)
		s.SetWorkers(workers)
		if optimism > 0 {
			s.SetOptimism(optimism)
		}
		if attrib {
			s.EnableCostAttribution(metrics.NewRegistry(), 3)
		}
		digest := fnv.New64a()
		s.OnDrive = func(net, src string, tt vtime.Time, v any) {
			fmt.Fprintf(digest, "%s|%s|%d|%v\n", net, src, tt, v)
		}
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		return fmt.Sprintf("%s|drv=%x|deliv=%d|now=%d",
			signature(cons), digest.Sum64(), st.Deliveries, s.Now())
	}
	for seed := int64(1); seed <= 8; seed++ {
		for _, mode := range []struct {
			workers  int
			optimism vtime.Duration
		}{{0, 0}, {2, 0}, {2, 17}} {
			plain := run(seed, mode.workers, mode.optimism, false)
			observed := run(seed, mode.workers, mode.optimism, true)
			if plain != observed {
				t.Fatalf("seed %d workers %d optimism %d: attribution changed the outcome\nplain: %s\nattr:  %s",
					seed, mode.workers, mode.optimism, plain, observed)
			}
		}
	}
}

func TestOnThrottleCollapseHook(t *testing.T) {
	s := NewSubsystem("storm")
	s.optThrottle = true
	s.effOpt = 1
	var gotSpec, gotAborted int
	s.OnThrottleCollapse = func(spec, aborted int) { gotSpec, gotAborted = spec, aborted }

	s.noteSpecOutcome(4, 1) // 1/4 aborted: no collapse
	if gotSpec != 0 {
		t.Fatal("hook fired without a collapse")
	}
	s.effOpt = 1
	s.noteSpecOutcome(4, 3) // storm: 1 -> 0, collapse
	if gotSpec != 4 || gotAborted != 3 {
		t.Fatalf("hook got (%d,%d), want (4,3)", gotSpec, gotAborted)
	}
	if s.optCool != optCooldownRounds {
		t.Fatalf("cooldown = %d", s.optCool)
	}
}
