package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

// randomSystem builds a randomized producer/consumer mesh from a
// seed: nProd producers with random periods and counts, nCons
// consumers, and random net wiring. Everything is derived from the
// seed, so two builds are identical.
func randomSystem(seed int64) (*Subsystem, []*consumer) {
	rng := rand.New(rand.NewSource(seed))
	s := NewSubsystem("prop")
	nProd := 1 + rng.Intn(4)
	nCons := 1 + rng.Intn(4)
	nNets := 1 + rng.Intn(3)

	nets := make([]*Net, nNets)
	for i := range nets {
		nets[i], _ = s.NewNet(fmt.Sprintf("n%d", i), vtime.Duration(rng.Intn(5)))
	}
	var cons []*consumer
	for i := 0; i < nCons; i++ {
		co := &consumer{}
		cons = append(cons, co)
		c, _ := s.NewComponent(fmt.Sprintf("cons%d", i), co)
		c.AddPort("in")
		s.Connect(nets[rng.Intn(nNets)], c.Port("in"))
	}
	for i := 0; i < nProd; i++ {
		pr := &producer{Count: 1 + rng.Intn(20), Period: vtime.Duration(1 + rng.Intn(30))}
		c, _ := s.NewComponent(fmt.Sprintf("prod%d", i), pr)
		c.AddPort("out")
		s.Connect(nets[rng.Intn(nNets)], c.Port("out"))
	}
	return s, cons
}

// signature summarizes a run for comparison.
func signature(cons []*consumer) string {
	sig := ""
	for i, co := range cons {
		sig += fmt.Sprintf("|%d:", i)
		for j, v := range co.Got {
			sig += fmt.Sprintf("%d@%d,", v, co.Times[j])
		}
	}
	return sig
}

// Property: simulation is deterministic — same seed, same delivery
// sequence with identical timestamps.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		s1, c1 := randomSystem(seed)
		if err := s1.Run(vtime.Infinity); err != nil {
			return false
		}
		s2, c2 := randomSystem(seed)
		if err := s2.Run(vtime.Infinity); err != nil {
			return false
		}
		return signature(c1) == signature(c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: subsystem time is monotone non-decreasing across steps
// (absent rollbacks) and never exceeds any live component's local
// time.
func TestTimeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := randomSystem(seed)
		ok := true
		last := vtime.Time(0)
		s.OnStep = func(now vtime.Time) {
			if now < last {
				ok = false
			}
			last = now
			for _, c := range s.Components() {
				if !c.Done() && now.After(c.LocalTime()) {
					ok = false
				}
			}
		}
		if err := s.Run(vtime.Infinity); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: restoring a checkpoint and re-running reproduces exactly
// the same final signature as the uninterrupted run.
func TestRestoreReplayProperty(t *testing.T) {
	f := func(seed int64, cutSeedRaw uint8) bool {
		// Reference run.
		sRef, cRef := randomSystem(seed)
		if err := sRef.Run(vtime.Infinity); err != nil {
			return false
		}
		want := signature(cRef)

		// Interrupted run: checkpoint at a pseudo-random time, run to
		// completion, rewind, re-run.
		s, c := randomSystem(seed)
		cut := vtime.Time(1 + int(cutSeedRaw)%200)
		requested := false
		s.OnStep = func(now vtime.Time) {
			if now >= cut && !requested {
				requested = true
				s.RequestCheckpoint("")
			}
		}
		if err := s.Run(vtime.Infinity); err != nil {
			return false
		}
		if got := signature(c); got != want {
			return false
		}
		cs := s.LatestCheckpoint()
		if cs == nil {
			// The cut fell after all activity; nothing to test.
			return true
		}
		if err := s.RestoreCheckpoint(cs); err != nil {
			return false
		}
		s.OnStep = nil
		if err := s.Run(vtime.Infinity); err != nil {
			return false
		}
		return signature(c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: drives fan out to exactly the listeners: total
// deliveries equals the sum over nets of drives x (ports - 1 driver)
// for fully-consuming consumers.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, cons := randomSystem(seed)
		if err := s.Run(vtime.Infinity); err != nil {
			return false
		}
		got := 0
		for _, co := range cons {
			got += len(co.Got)
		}
		return int64(got) == s.Stats().Deliveries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: DelayUntil never moves time backwards and lands exactly
// on the target when the target is in the future.
func TestDelayUntilProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		if len(steps) == 0 {
			return true
		}
		if len(steps) > 50 {
			steps = steps[:50]
		}
		ok := true
		s := NewSubsystem("du")
		b := BehaviorFunc(func(p *Proc) error {
			for _, raw := range steps {
				target := vtime.Time(raw)
				before := p.Time()
				p.DelayUntil(target)
				after := p.Time()
				if after < before {
					ok = false
				}
				if target > before && after != target {
					ok = false
				}
				if target <= before && after != before {
					ok = false
				}
			}
			return nil
		})
		s.NewComponent("c", b)
		if err := s.Run(vtime.Infinity); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
