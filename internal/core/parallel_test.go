package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

// relay receives on "in", models some compute latency, and forwards
// the incremented value on "out". Chatty relays exercise the buffered
// trace path inside parallel rounds.
type relay struct {
	work   vtime.Duration
	chatty bool
}

func (r *relay) Run(p *Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		if r.chatty {
			p.Logf("relay %v", m.Value)
		}
		p.Advance(r.work)
		p.Send("out", m.Value.(int)+1)
	}
}

// poller exercises the deadline fast path: it polls its port a fixed
// number of times with RecvDeadline.
type poller struct {
	period vtime.Duration
	rounds int
	Got    []int
	Times  []vtime.Time
}

func (po *poller) Run(p *Proc) error {
	for i := 0; i < po.rounds; i++ {
		m, ok := p.RecvDeadline(p.Time().Add(po.period), "in")
		if ok {
			po.Got = append(po.Got, m.Value.(int))
			po.Times = append(po.Times, m.Time)
		}
	}
	return nil
}

// randomParallelSystem builds a seeded random topology: producers and
// relays form a DAG over a handful of nets (zero delays included), so
// every run terminates; consumers and pollers record what reaches
// them. Everything is derived from the seed.
func randomParallelSystem(seed int64) (*Subsystem, []*consumer, []*poller) {
	rng := rand.New(rand.NewSource(seed))
	s := NewSubsystem("par")

	nNets := 2 + rng.Intn(3)
	nets := make([]*Net, nNets)
	for i := range nets {
		nets[i], _ = s.NewNet(fmt.Sprintf("n%d", i), vtime.Duration(rng.Intn(6)))
	}

	nProd := 1 + rng.Intn(4)
	for i := 0; i < nProd; i++ {
		pr := &producer{Count: 1 + rng.Intn(20), Period: vtime.Duration(1 + rng.Intn(30))}
		c, _ := s.NewComponent(fmt.Sprintf("prod%d", i), pr)
		c.AddPort("out")
		s.Connect(nets[rng.Intn(nNets)], c.Port("out"))
	}

	// Relays forward strictly "downstream" (lower net index to
	// higher), keeping the topology acyclic.
	nRelay := rng.Intn(3)
	for i := 0; i < nRelay; i++ {
		from := rng.Intn(nNets - 1)
		to := from + 1 + rng.Intn(nNets-from-1)
		rl := &relay{work: vtime.Duration(rng.Intn(8)), chatty: rng.Intn(2) == 0}
		c, _ := s.NewComponent(fmt.Sprintf("relay%d", i), rl)
		c.AddPort("in")
		c.AddPort("out")
		s.Connect(nets[from], c.Port("in"))
		s.Connect(nets[to], c.Port("out"))
	}

	var cons []*consumer
	nCons := 1 + rng.Intn(4)
	for i := 0; i < nCons; i++ {
		co := &consumer{}
		cons = append(cons, co)
		c, _ := s.NewComponent(fmt.Sprintf("cons%d", i), co)
		c.AddPort("in")
		s.Connect(nets[rng.Intn(nNets)], c.Port("in"))
	}

	var polls []*poller
	nPoll := rng.Intn(3)
	for i := 0; i < nPoll; i++ {
		po := &poller{period: vtime.Duration(1 + rng.Intn(20)), rounds: 1 + rng.Intn(10)}
		polls = append(polls, po)
		c, _ := s.NewComponent(fmt.Sprintf("poll%d", i), po)
		c.AddPort("in")
		s.Connect(nets[rng.Intn(nNets)], c.Port("in"))
	}
	return s, cons, polls
}

// runFingerprint runs the seeded system with the given worker count
// and returns a string capturing everything the parallel scheduler
// must reproduce bit-for-bit: delivery values and times, final local
// times, final subsystem time, per-net drive counts, the ordered
// drive stream, the ordered trace stream, and the delivery counter.
func runFingerprint(t *testing.T, seed int64, workers int) (string, Stats) {
	t.Helper()
	s, cons, polls := randomParallelSystem(seed)
	s.SetWorkers(workers)

	driveDigest := fnv.New64a()
	driveCounts := make(map[string]int64)
	s.OnDrive = func(net, src string, tt vtime.Time, v any) {
		driveCounts[net]++
		fmt.Fprintf(driveDigest, "%s|%s|%d|%v\n", net, src, tt, v)
	}
	traceDigest := fnv.New64a()
	s.Tracer = func(line string) { fmt.Fprintf(traceDigest, "%s\n", line) }

	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}

	sig := signature(cons)
	for i, po := range polls {
		sig += fmt.Sprintf("|poll%d:", i)
		for j, v := range po.Got {
			sig += fmt.Sprintf("%d@%d,", v, po.Times[j])
		}
	}
	for _, c := range s.Components() {
		sig += fmt.Sprintf("|%s@%d", c.Name(), c.LocalTime())
	}
	sig += fmt.Sprintf("|now=%d", s.Now())
	for i := 0; ; i++ {
		name := fmt.Sprintf("n%d", i)
		if s.Net(name) == nil {
			break
		}
		sig += fmt.Sprintf("|%s=%d", name, driveCounts[name])
	}
	st := s.Stats()
	sig += fmt.Sprintf("|drv=%x|trc=%x|deliv=%d|drives=%d",
		driveDigest.Sum64(), traceDigest.Sum64(), st.Deliveries, st.Drives)
	return sig, st
}

// TestParallelEquivalenceProperty: across 50 random topologies, the
// parallel scheduler at 1, 2 and 4 workers must produce exactly the
// sequential scheduler's virtual end times, per-net drive counts and
// trace digests.
func TestParallelEquivalenceProperty(t *testing.T) {
	var parRounds int64
	for seed := int64(1); seed <= 50; seed++ {
		want, _ := runFingerprint(t, seed, 0)
		for _, workers := range []int{1, 2, 4} {
			got, st := runFingerprint(t, seed, workers)
			if got != want {
				t.Fatalf("seed %d: workers=%d diverged from sequential\nseq: %s\npar: %s",
					seed, workers, want, got)
			}
			parRounds += st.ParRounds
		}
	}
	if parRounds == 0 {
		t.Fatal("no parallel rounds were ever dispatched; the parallel path went untested")
	}
}

// TestParallelPipeIdentical pins the basic case: a producer/consumer
// pipe delivers identical values at identical times regardless of the
// worker count.
func TestParallelPipeIdentical(t *testing.T) {
	ref, _, coRef := buildPipe(t, 3, 50, 2)
	if err := ref.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		s, _, co := buildPipe(t, 3, 50, 2)
		s.SetWorkers(workers)
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		if len(co.Got) != len(coRef.Got) {
			t.Fatalf("workers=%d delivered %d, want %d", workers, len(co.Got), len(coRef.Got))
		}
		for i := range co.Got {
			if co.Got[i] != coRef.Got[i] || co.Times[i] != coRef.Times[i] {
				t.Fatalf("workers=%d delivery %d = %d@%v, want %d@%v",
					workers, i, co.Got[i], co.Times[i], coRef.Got[i], coRef.Times[i])
			}
		}
		if got, want := s.Stats().Drives, ref.Stats().Drives; got != want {
			t.Fatalf("workers=%d drives %d, want %d", workers, got, want)
		}
	}
}

// TestParallelRoundsDispatch: independent producer/consumer pairs are
// exactly the shape the safe horizon admits; with workers set, rounds
// must actually be dispatched to the pool.
func TestParallelRoundsDispatch(t *testing.T) {
	build := func() (*Subsystem, []*consumer) {
		s := NewSubsystem("fan")
		var cons []*consumer
		for i := 0; i < 8; i++ {
			n, _ := s.NewNet(fmt.Sprintf("lane%d", i), 5)
			pr := &producer{Count: 20, Period: 7}
			pc, _ := s.NewComponent(fmt.Sprintf("p%d", i), pr)
			pc.AddPort("out")
			co := &consumer{}
			cons = append(cons, co)
			cc, _ := s.NewComponent(fmt.Sprintf("c%d", i), co)
			cc.AddPort("in")
			s.Connect(n, pc.Port("out"), cc.Port("in"))
		}
		return s, cons
	}
	ref, consRef := build()
	if err := ref.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	s, cons := build()
	s.SetWorkers(4)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ParRounds == 0 {
		t.Fatal("no parallel rounds dispatched on a fully independent topology")
	}
	if signature(cons) != signature(consRef) {
		t.Fatalf("parallel fan diverged:\nseq: %s\npar: %s", signature(consRef), signature(cons))
	}
}

// TestParallelAutoCheckpoint: automatic checkpoint cuts must land at
// identical virtual times in parallel mode (the round horizon is
// capped at the next cut), and a restore must replay identically.
func TestParallelAutoCheckpoint(t *testing.T) {
	run := func(workers int) (string, []vtime.Time) {
		s, _, co := buildPipe(t, 3, 40, 5)
		s.SetWorkers(workers)
		s.SetAutoCheckpoint(25)
		s.SetCheckpointRetention(100)
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		var cuts []vtime.Time
		for _, cs := range s.Checkpoints() {
			cuts = append(cuts, cs.Time)
		}
		sig := ""
		for i := range co.Got {
			sig += fmt.Sprintf("%d@%d,", co.Got[i], co.Times[i])
		}
		return sig, cuts
	}
	wantSig, wantCuts := run(0)
	for _, workers := range []int{2, 4} {
		sig, cuts := run(workers)
		if sig != wantSig {
			t.Fatalf("workers=%d deliveries diverged", workers)
		}
		if len(cuts) != len(wantCuts) {
			t.Fatalf("workers=%d made %d checkpoints, want %d", workers, len(cuts), len(wantCuts))
		}
		for i := range cuts {
			if cuts[i] != wantCuts[i] {
				t.Fatalf("workers=%d cut %d at %v, want %v", workers, i, cuts[i], wantCuts[i])
			}
		}
	}
}

// TestParallelPoolRestart: the pool starts and stops per Run; a
// finite-horizon run followed by a continuation must work and match a
// single sequential run.
func TestParallelPoolRestart(t *testing.T) {
	ref, _, coRef := buildPipe(t, 2, 30, 4)
	if err := ref.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	s, _, co := buildPipe(t, 2, 30, 4)
	s.SetWorkers(3)
	if err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(co.Got) != fmt.Sprint(coRef.Got) || fmt.Sprint(co.Times) != fmt.Sprint(coRef.Times) {
		t.Fatalf("split run diverged: got %v@%v want %v@%v", co.Got, co.Times, coRef.Got, coRef.Times)
	}
}

// TestParallelStop: Stop must interrupt parallel rounds promptly (the
// external-request generation vacates the inline fast paths).
func TestParallelStop(t *testing.T) {
	s := NewSubsystem("stop")
	for i := 0; i < 4; i++ {
		n, _ := s.NewNet(fmt.Sprintf("lane%d", i), 1)
		c, _ := s.NewComponent(fmt.Sprintf("spin%d", i), BehaviorFunc(func(p *Proc) error {
			for {
				p.Send("out", 1)
				p.Delay(1)
			}
		}))
		c.AddPort("out")
		s.Connect(n, c.Port("out"))
	}
	s.SetWorkers(4)
	done := make(chan error, 1)
	go func() { done <- s.Run(vtime.Infinity) }()
	s.Stop()
	if err := <-done; err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	s.Teardown()
}

// TestFastPathMatchesHookedRun: installing OnStep pins the scheduler
// to the classic step-at-a-time path; results must match the fast
// (fused) path exactly.
func TestFastPathMatchesHookedRun(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		fast, _ := runFingerprint(t, seed, 0)
		s, cons, polls := randomParallelSystem(seed)
		steps := 0
		s.OnStep = func(vtime.Time) { steps++ }
		driveDigest := fnv.New64a()
		driveCounts := make(map[string]int64)
		s.OnDrive = func(net, src string, tt vtime.Time, v any) {
			driveCounts[net]++
			fmt.Fprintf(driveDigest, "%s|%s|%d|%v\n", net, src, tt, v)
		}
		traceDigest := fnv.New64a()
		s.Tracer = func(line string) { fmt.Fprintf(traceDigest, "%s\n", line) }
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		sig := signature(cons)
		for i, po := range polls {
			sig += fmt.Sprintf("|poll%d:", i)
			for j, v := range po.Got {
				sig += fmt.Sprintf("%d@%d,", v, po.Times[j])
			}
		}
		for _, c := range s.Components() {
			sig += fmt.Sprintf("|%s@%d", c.Name(), c.LocalTime())
		}
		sig += fmt.Sprintf("|now=%d", s.Now())
		for i := 0; ; i++ {
			name := fmt.Sprintf("n%d", i)
			if s.Net(name) == nil {
				break
			}
			sig += fmt.Sprintf("|%s=%d", name, driveCounts[name])
		}
		st := s.Stats()
		sig += fmt.Sprintf("|drv=%x|trc=%x|deliv=%d|drives=%d",
			driveDigest.Sum64(), traceDigest.Sum64(), st.Deliveries, st.Drives)
		if sig != fast {
			t.Fatalf("seed %d: hooked (slow) run diverged from fast run\nslow: %s\nfast: %s", seed, sig, fast)
		}
		if steps == 0 {
			t.Fatal("OnStep never called")
		}
	}
}
