package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/vtime"
)

// relay receives on "in", models some compute latency, and forwards
// the incremented value on "out". Chatty relays exercise the buffered
// trace path inside parallel rounds.
type relay struct {
	work   vtime.Duration
	chatty bool
}

func (r *relay) Run(p *Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		if r.chatty {
			p.Logf("relay %v", m.Value)
		}
		p.Advance(r.work)
		p.Send("out", m.Value.(int)+1)
	}
}

// A relay is a pure reactor: its Recv loop carries no progress state,
// so an empty image makes it checkpointable (and thus eligible for
// speculative dispatch). work and chatty are configuration, preserved
// because restore never touches them.
func (r *relay) SaveState() ([]byte, error) { return nil, nil }
func (r *relay) RestoreState([]byte) error  { return nil }

// poller exercises the deadline fast path: it polls its port a fixed
// number of times with RecvDeadline. Done counts completed polls and
// Last anchors the next deadline, so a restored poller resumes
// exactly where its image was taken: deadlines must chain from saved
// state, not from p.Time() — a restored component's local clock
// includes whatever idle catch-up it had absorbed while parked, so a
// deadline recomputed from it would drift (the RecvDeadline analogue
// of the Delay-vs-DelayUntil checkpoint rule).
type poller struct {
	period vtime.Duration
	rounds int
	Done   int
	Last   vtime.Time
	Got    []int
	Times  []vtime.Time
}

func (po *poller) Run(p *Proc) error {
	for po.Done < po.rounds {
		m, ok := p.RecvDeadline(po.Last.Add(po.period), "in")
		if ok {
			po.Got = append(po.Got, m.Value.(int))
			po.Times = append(po.Times, m.Time)
		}
		po.Last = p.Time()
		po.Done++
	}
	return nil
}

// pollerState is the poller's saved progress. period and rounds are
// configuration and stay out of the image: GobRestore zeroes its
// target, so gob-encoding the poller itself would wipe them (they are
// unexported and gob cannot carry them).
type pollerState struct {
	Done  int
	Last  vtime.Time
	Got   []int
	Times []vtime.Time
}

func (po *poller) SaveState() ([]byte, error) {
	return GobSave(pollerState{Done: po.Done, Last: po.Last, Got: po.Got, Times: po.Times})
}

func (po *poller) RestoreState(b []byte) error {
	var st pollerState
	if err := GobRestore(&st, b); err != nil {
		return err
	}
	po.Done, po.Last, po.Got, po.Times = st.Done, st.Last, st.Got, st.Times
	return nil
}

// randomParallelSystem builds a seeded random topology: producers and
// relays form a DAG over a handful of nets (zero delays included), so
// every run terminates; consumers and pollers record what reaches
// them. Everything is derived from the seed.
func randomParallelSystem(seed int64) (*Subsystem, []*consumer, []*poller) {
	rng := rand.New(rand.NewSource(seed))
	s := NewSubsystem("par")

	nNets := 2 + rng.Intn(3)
	nets := make([]*Net, nNets)
	for i := range nets {
		nets[i], _ = s.NewNet(fmt.Sprintf("n%d", i), vtime.Duration(rng.Intn(6)))
	}

	nProd := 1 + rng.Intn(4)
	for i := 0; i < nProd; i++ {
		pr := &producer{Count: 1 + rng.Intn(20), Period: vtime.Duration(1 + rng.Intn(30))}
		c, _ := s.NewComponent(fmt.Sprintf("prod%d", i), pr)
		c.AddPort("out")
		s.Connect(nets[rng.Intn(nNets)], c.Port("out"))
	}

	// Relays forward strictly "downstream" (lower net index to
	// higher), keeping the topology acyclic.
	nRelay := rng.Intn(3)
	for i := 0; i < nRelay; i++ {
		from := rng.Intn(nNets - 1)
		to := from + 1 + rng.Intn(nNets-from-1)
		rl := &relay{work: vtime.Duration(rng.Intn(8)), chatty: rng.Intn(2) == 0}
		c, _ := s.NewComponent(fmt.Sprintf("relay%d", i), rl)
		c.AddPort("in")
		c.AddPort("out")
		s.Connect(nets[from], c.Port("in"))
		s.Connect(nets[to], c.Port("out"))
	}

	var cons []*consumer
	nCons := 1 + rng.Intn(4)
	for i := 0; i < nCons; i++ {
		co := &consumer{}
		cons = append(cons, co)
		c, _ := s.NewComponent(fmt.Sprintf("cons%d", i), co)
		c.AddPort("in")
		s.Connect(nets[rng.Intn(nNets)], c.Port("in"))
	}

	var polls []*poller
	nPoll := rng.Intn(3)
	for i := 0; i < nPoll; i++ {
		po := &poller{period: vtime.Duration(1 + rng.Intn(20)), rounds: 1 + rng.Intn(10)}
		polls = append(polls, po)
		c, _ := s.NewComponent(fmt.Sprintf("poll%d", i), po)
		c.AddPort("in")
		s.Connect(nets[rng.Intn(nNets)], c.Port("in"))
	}
	return s, cons, polls
}

// runFingerprint runs the seeded system with the given worker count
// and returns a string capturing everything the parallel scheduler
// must reproduce bit-for-bit: delivery values and times, final local
// times, final subsystem time, per-net drive counts, the ordered
// drive stream, the ordered trace stream, and the delivery counter.
func runFingerprint(t *testing.T, seed int64, workers int) (string, Stats) {
	return runFingerprintOpt(t, seed, workers, 0)
}

// runFingerprintOpt is runFingerprint with an optimistic (Time Warp)
// window; 0 keeps the rounds purely conservative.
func runFingerprintOpt(t *testing.T, seed int64, workers int, optimism vtime.Duration) (string, Stats) {
	t.Helper()
	s, cons, polls := randomParallelSystem(seed)
	s.SetWorkers(workers)
	if optimism > 0 {
		s.SetOptimism(optimism)
	}

	driveDigest := fnv.New64a()
	driveCounts := make(map[string]int64)
	s.OnDrive = func(net, src string, tt vtime.Time, v any) {
		driveCounts[net]++
		fmt.Fprintf(driveDigest, "%s|%s|%d|%v\n", net, src, tt, v)
	}
	traceDigest := fnv.New64a()
	s.Tracer = func(line string) { fmt.Fprintf(traceDigest, "%s\n", line) }

	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatalf("seed %d workers %d optimism %d: %v", seed, workers, optimism, err)
	}

	sig := signature(cons)
	for i, po := range polls {
		sig += fmt.Sprintf("|poll%d:", i)
		for j, v := range po.Got {
			sig += fmt.Sprintf("%d@%d,", v, po.Times[j])
		}
	}
	for _, c := range s.Components() {
		sig += fmt.Sprintf("|%s@%d", c.Name(), c.LocalTime())
	}
	sig += fmt.Sprintf("|now=%d", s.Now())
	for i := 0; ; i++ {
		name := fmt.Sprintf("n%d", i)
		if s.Net(name) == nil {
			break
		}
		sig += fmt.Sprintf("|%s=%d", name, driveCounts[name])
	}
	st := s.Stats()
	sig += fmt.Sprintf("|drv=%x|trc=%x|deliv=%d|drives=%d",
		driveDigest.Sum64(), traceDigest.Sum64(), st.Deliveries, st.Drives)
	return sig, st
}

// TestParallelEquivalenceProperty: across 50 random topologies, a
// three-way mode matrix — sequential, conservative rounds, and
// optimistic (Time Warp) rounds at varied windows — at 1, 2 and 4
// workers must produce exactly the sequential scheduler's delivery
// stream, virtual end times, per-net drive counts and drive/trace
// digests.
func TestParallelEquivalenceProperty(t *testing.T) {
	var parRounds, specRounds, rollbacks int64
	for seed := int64(1); seed <= 50; seed++ {
		want, _ := runFingerprint(t, seed, 0)
		for _, workers := range []int{1, 2, 4} {
			got, st := runFingerprint(t, seed, workers)
			if got != want {
				t.Fatalf("seed %d: workers=%d diverged from sequential\nseq: %s\npar: %s",
					seed, workers, want, got)
			}
			parRounds += st.ParRounds
			for _, w := range []vtime.Duration{3, 17} {
				got, st := runFingerprintOpt(t, seed, workers, w)
				if got != want {
					t.Fatalf("seed %d: workers=%d optimism=%d diverged from sequential\nseq: %s\nopt: %s",
						seed, workers, w, want, got)
				}
				specRounds += st.SpecRounds
				rollbacks += st.Rollbacks
			}
		}
	}
	if parRounds == 0 {
		t.Fatal("no parallel rounds were ever dispatched; the parallel path went untested")
	}
	if specRounds == 0 {
		t.Fatal("no speculative rounds were ever dispatched; the optimistic path went untested")
	}
	t.Logf("matrix: %d conservative rounds, %d speculative rounds, %d rollbacks",
		parRounds, specRounds, rollbacks)
}

// TestParallelPipeIdentical pins the basic case: a producer/consumer
// pipe delivers identical values at identical times regardless of the
// worker count.
func TestParallelPipeIdentical(t *testing.T) {
	ref, _, coRef := buildPipe(t, 3, 50, 2)
	if err := ref.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		s, _, co := buildPipe(t, 3, 50, 2)
		s.SetWorkers(workers)
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		if len(co.Got) != len(coRef.Got) {
			t.Fatalf("workers=%d delivered %d, want %d", workers, len(co.Got), len(coRef.Got))
		}
		for i := range co.Got {
			if co.Got[i] != coRef.Got[i] || co.Times[i] != coRef.Times[i] {
				t.Fatalf("workers=%d delivery %d = %d@%v, want %d@%v",
					workers, i, co.Got[i], co.Times[i], coRef.Got[i], coRef.Times[i])
			}
		}
		if got, want := s.Stats().Drives, ref.Stats().Drives; got != want {
			t.Fatalf("workers=%d drives %d, want %d", workers, got, want)
		}
	}
}

// TestParallelRoundsDispatch: independent producer/consumer pairs are
// exactly the shape the safe horizon admits; with workers set, rounds
// must actually be dispatched to the pool.
func TestParallelRoundsDispatch(t *testing.T) {
	build := func() (*Subsystem, []*consumer) {
		s := NewSubsystem("fan")
		var cons []*consumer
		for i := 0; i < 8; i++ {
			n, _ := s.NewNet(fmt.Sprintf("lane%d", i), 5)
			pr := &producer{Count: 20, Period: 7}
			pc, _ := s.NewComponent(fmt.Sprintf("p%d", i), pr)
			pc.AddPort("out")
			co := &consumer{}
			cons = append(cons, co)
			cc, _ := s.NewComponent(fmt.Sprintf("c%d", i), co)
			cc.AddPort("in")
			s.Connect(n, pc.Port("out"), cc.Port("in"))
		}
		return s, cons
	}
	ref, consRef := build()
	if err := ref.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	s, cons := build()
	s.SetWorkers(4)
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ParRounds == 0 {
		t.Fatal("no parallel rounds dispatched on a fully independent topology")
	}
	if signature(cons) != signature(consRef) {
		t.Fatalf("parallel fan diverged:\nseq: %s\npar: %s", signature(consRef), signature(cons))
	}
}

// TestParallelAutoCheckpoint: automatic checkpoint cuts must land at
// identical virtual times in parallel mode (the round horizon is
// capped at the next cut), and a restore must replay identically.
func TestParallelAutoCheckpoint(t *testing.T) {
	run := func(workers int) (string, []vtime.Time) {
		s, _, co := buildPipe(t, 3, 40, 5)
		s.SetWorkers(workers)
		s.SetAutoCheckpoint(25)
		s.SetCheckpointRetention(100)
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		var cuts []vtime.Time
		for _, cs := range s.Checkpoints() {
			cuts = append(cuts, cs.Time)
		}
		sig := ""
		for i := range co.Got {
			sig += fmt.Sprintf("%d@%d,", co.Got[i], co.Times[i])
		}
		return sig, cuts
	}
	wantSig, wantCuts := run(0)
	for _, workers := range []int{2, 4} {
		sig, cuts := run(workers)
		if sig != wantSig {
			t.Fatalf("workers=%d deliveries diverged", workers)
		}
		if len(cuts) != len(wantCuts) {
			t.Fatalf("workers=%d made %d checkpoints, want %d", workers, len(cuts), len(wantCuts))
		}
		for i := range cuts {
			if cuts[i] != wantCuts[i] {
				t.Fatalf("workers=%d cut %d at %v, want %v", workers, i, cuts[i], wantCuts[i])
			}
		}
	}
}

// TestParallelPoolRestart: the pool starts and stops per Run; a
// finite-horizon run followed by a continuation must work and match a
// single sequential run.
func TestParallelPoolRestart(t *testing.T) {
	ref, _, coRef := buildPipe(t, 2, 30, 4)
	if err := ref.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	s, _, co := buildPipe(t, 2, 30, 4)
	s.SetWorkers(3)
	if err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(co.Got) != fmt.Sprint(coRef.Got) || fmt.Sprint(co.Times) != fmt.Sprint(coRef.Times) {
		t.Fatalf("split run diverged: got %v@%v want %v@%v", co.Got, co.Times, coRef.Got, coRef.Times)
	}
}

// TestParallelStop: Stop must interrupt parallel rounds promptly (the
// external-request generation vacates the inline fast paths).
func TestParallelStop(t *testing.T) {
	s := NewSubsystem("stop")
	for i := 0; i < 4; i++ {
		n, _ := s.NewNet(fmt.Sprintf("lane%d", i), 1)
		c, _ := s.NewComponent(fmt.Sprintf("spin%d", i), BehaviorFunc(func(p *Proc) error {
			for {
				p.Send("out", 1)
				p.Delay(1)
			}
		}))
		c.AddPort("out")
		s.Connect(n, c.Port("out"))
	}
	s.SetWorkers(4)
	done := make(chan error, 1)
	go func() { done <- s.Run(vtime.Infinity) }()
	s.Stop()
	if err := <-done; err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	s.Teardown()
}

// TestFastPathMatchesHookedRun: installing OnStep pins the scheduler
// to the classic step-at-a-time path; results must match the fast
// (fused) path exactly.
func TestFastPathMatchesHookedRun(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		fast, _ := runFingerprint(t, seed, 0)
		s, cons, polls := randomParallelSystem(seed)
		steps := 0
		s.OnStep = func(vtime.Time) { steps++ }
		driveDigest := fnv.New64a()
		driveCounts := make(map[string]int64)
		s.OnDrive = func(net, src string, tt vtime.Time, v any) {
			driveCounts[net]++
			fmt.Fprintf(driveDigest, "%s|%s|%d|%v\n", net, src, tt, v)
		}
		traceDigest := fnv.New64a()
		s.Tracer = func(line string) { fmt.Fprintf(traceDigest, "%s\n", line) }
		if err := s.Run(vtime.Infinity); err != nil {
			t.Fatal(err)
		}
		sig := signature(cons)
		for i, po := range polls {
			sig += fmt.Sprintf("|poll%d:", i)
			for j, v := range po.Got {
				sig += fmt.Sprintf("%d@%d,", v, po.Times[j])
			}
		}
		for _, c := range s.Components() {
			sig += fmt.Sprintf("|%s@%d", c.Name(), c.LocalTime())
		}
		sig += fmt.Sprintf("|now=%d", s.Now())
		for i := 0; ; i++ {
			name := fmt.Sprintf("n%d", i)
			if s.Net(name) == nil {
				break
			}
			sig += fmt.Sprintf("|%s=%d", name, driveCounts[name])
		}
		st := s.Stats()
		sig += fmt.Sprintf("|drv=%x|trc=%x|deliv=%d|drives=%d",
			driveDigest.Sum64(), traceDigest.Sum64(), st.Deliveries, st.Drives)
		if sig != fast {
			t.Fatalf("seed %d: hooked (slow) run diverged from fast run\nslow: %s\nfast: %s", seed, sig, fast)
		}
		if steps == 0 {
			t.Fatal("OnStep never called")
		}
	}
}

// stormTicker emits one value per virtual tick. It is deliberately
// NOT a StateSaver: it can never be dispatched speculatively, so the
// storm's speculative cohort is always exactly the poller — and every
// speculative round must therefore roll back.
type stormTicker struct {
	N    int
	Sent int
}

func (a *stormTicker) Run(p *Proc) error {
	for a.Sent < a.N {
		p.Send("out", a.Sent)
		a.Sent++
		p.Delay(1)
	}
	return nil
}

// stormPoller polls a silent "tick" port on a long period while the
// ticker's output piles up unread on its filtered-out "in" port. Its
// scheduling key therefore runs far ahead of the ticker's, so every
// optimistic round speculates it past the horizon — and every ticker
// send then lands in its executed past, forcing a rollback. Each poll
// logs a trace line, so a single leaked (rolled-back, then replayed)
// poll would double a line and break the trace digest.
type stormPoller struct {
	Period vtime.Duration
	Rounds int
	Done   int
	Last   vtime.Time
	Times  []vtime.Time
}

func (po *stormPoller) Run(p *Proc) error {
	for po.Done < po.Rounds {
		_, ok := p.RecvDeadline(po.Last.Add(po.Period), "tick")
		if !ok {
			po.Times = append(po.Times, p.Time())
		}
		p.Logf("poll %d", po.Done)
		po.Last = p.Time()
		po.Done++
	}
	return nil
}

func (po *stormPoller) SaveState() ([]byte, error) { return GobSave(po) }
func (po *stormPoller) RestoreState(b []byte) error {
	return GobRestore(po, b)
}

// buildStorm wires the straggler storm: ticker -> (delay-1 net) ->
// poller "in", with the poller's deadline loop filtered to a never-
// driven "tick" net so the piled-up input never lifts its key.
func buildStorm(t *testing.T) (*Subsystem, *stormPoller) {
	t.Helper()
	s := NewSubsystem("storm")
	x, _ := s.NewNet("x", 1)
	tick, _ := s.NewNet("tick", 100)
	a, _ := s.NewComponent("tick0", &stormTicker{N: 30})
	a.AddPort("out")
	s.Connect(x, a.Port("out"))
	po := &stormPoller{Period: 10, Rounds: 10}
	m, _ := s.NewComponent("poll0", po)
	m.AddPort("in")
	m.AddPort("tick")
	s.Connect(x, m.Port("in"))
	s.Connect(tick, m.Port("tick"))
	return s, po
}

// stormFingerprint runs the storm topology and digests everything the
// optimistic scheduler must keep bit-identical to sequential.
func stormFingerprint(t *testing.T, workers int, optimism vtime.Duration, throttle bool) (string, Stats) {
	t.Helper()
	s, po := buildStorm(t)
	s.SetWorkers(workers)
	if optimism > 0 {
		s.SetOptimism(optimism)
		s.SetOptimismThrottle(throttle)
	}
	driveDigest := fnv.New64a()
	s.OnDrive = func(net, src string, tt vtime.Time, v any) {
		fmt.Fprintf(driveDigest, "%s|%s|%d|%v\n", net, src, tt, v)
	}
	traceDigest := fnv.New64a()
	s.Tracer = func(line string) { fmt.Fprintf(traceDigest, "%s\n", line) }
	if err := s.Run(vtime.Infinity); err != nil {
		t.Fatalf("storm workers=%d optimism=%d: %v", workers, optimism, err)
	}
	st := s.Stats()
	sig := fmt.Sprintf("done=%d|times=%v|now=%d|drv=%x|trc=%x|deliv=%d|drives=%d",
		po.Done, po.Times, s.Now(), driveDigest.Sum64(), traceDigest.Sum64(),
		st.Deliveries, st.Drives)
	for _, c := range s.Components() {
		sig += fmt.Sprintf("|%s@%d", c.Name(), c.LocalTime())
	}
	return sig, st
}

// TestOptimisticStragglerStorm: with the throttle pinned open, the
// storm topology makes every speculative round mis-speculate — the
// merge must roll the poller back each time and still converge on the
// exact sequential result.
func TestOptimisticStragglerStorm(t *testing.T) {
	want, _ := stormFingerprint(t, 0, 0, false)
	got, st := stormFingerprint(t, 2, 64, false)
	if got != want {
		t.Fatalf("storm diverged from sequential\nseq: %s\nopt: %s", want, got)
	}
	if st.SpecRounds < 5 {
		t.Fatalf("storm dispatched only %d speculative rounds; topology no longer speculates", st.SpecRounds)
	}
	if st.Rollbacks < st.SpecRounds {
		t.Fatalf("storm rolled back %d times over %d speculative rounds; want a rollback every round",
			st.Rollbacks, st.SpecRounds)
	}
	if st.RolledBack == 0 {
		t.Fatal("rollbacks discarded zero buffered events")
	}
	t.Logf("storm: %d spec rounds, %d rollbacks, %d ops discarded, %d commits",
		st.SpecRounds, st.Rollbacks, st.RolledBack, st.SpecCommits)
}

// TestOptimisticThrottleAdapts: the same hostile topology with the
// adaptive throttle left on must still match sequential while paying
// for far fewer mis-speculations — the window collapses after the
// rollback storm begins and only retries after cooldowns.
func TestOptimisticThrottleAdapts(t *testing.T) {
	want, _ := stormFingerprint(t, 0, 0, false)
	got, st := stormFingerprint(t, 2, 64, true)
	if got != want {
		t.Fatalf("throttled storm diverged from sequential\nseq: %s\nopt: %s", want, got)
	}
	_, unthrottled := stormFingerprint(t, 2, 64, false)
	if st.Rollbacks >= unthrottled.Rollbacks {
		t.Fatalf("throttle did not help: %d rollbacks throttled vs %d unthrottled",
			st.Rollbacks, unthrottled.Rollbacks)
	}
}
