// Package vtime defines virtual (simulated) time for the Pia
// co-simulation framework.
//
// Pia maintains a two-level hierarchy of virtual time: every component
// has a local time, and every subsystem has a subsystem (system) time
// that is required to be less than or equal to the local time of every
// component in the subsystem. This package provides the scalar time
// type both levels are built from.
//
// Time is a count of ticks. A tick is dimensionless as far as the
// kernel is concerned; workloads conventionally treat one tick as one
// nanosecond of simulated time, and the helpers below follow that
// convention.
package vtime

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in ticks since the start
// of the simulation. Negative values are not used by the kernel except
// for the zero-value convenience of comparisons.
type Time int64

// Duration is a span of virtual time in ticks.
type Duration int64

// Infinity is a time later than every event the simulator can
// schedule. A subsystem whose next event is at Infinity has run out of
// work; a safe time of Infinity means "I will never send you anything
// again".
const Infinity Time = math.MaxInt64

// Never is an alias of Infinity for call sites where the intent is
// "this will not happen".
const Never = Infinity

// Conventional tick interpretations (one tick = one nanosecond).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t advanced by d, saturating at Infinity rather than
// overflowing. Advancing Infinity by any duration stays at Infinity.
func (t Time) Add(d Duration) Time {
	if t == Infinity {
		return Infinity
	}
	if d > 0 && t > Infinity-Time(d) {
		return Infinity
	}
	return t + Time(d)
}

// Sub returns the duration from u to t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// IsInfinite reports whether t is Infinity.
func (t Time) IsInfinite() bool { return t == Infinity }

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinOf returns the earliest of the given times, or Infinity when
// called with no arguments.
func MinOf(ts ...Time) Time {
	m := Infinity
	for _, t := range ts {
		if t < m {
			m = t
		}
	}
	return m
}

// String formats the time using the one-tick-per-nanosecond
// convention: "inf" for Infinity, otherwise a scaled decimal such as
// "1.5ms" or "42ns".
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	return formatTicks(int64(t))
}

// String formats the duration like Time.String.
func (d Duration) String() string { return formatTicks(int64(d)) }

func formatTicks(n int64) string {
	neg := ""
	if n < 0 {
		neg = "-"
		n = -n
	}
	switch {
	case n >= int64(Second) && n%int64(Millisecond) == 0:
		whole := n / int64(Second)
		frac := (n % int64(Second)) / int64(Millisecond)
		if frac == 0 {
			return fmt.Sprintf("%s%ds", neg, whole)
		}
		return fmt.Sprintf("%s%d.%03ds", neg, whole, frac)
	case n >= int64(Millisecond) && n%int64(Microsecond) == 0:
		whole := n / int64(Millisecond)
		frac := (n % int64(Millisecond)) / int64(Microsecond)
		if frac == 0 {
			return fmt.Sprintf("%s%dms", neg, whole)
		}
		return fmt.Sprintf("%s%d.%03dms", neg, whole, frac)
	case n >= int64(Microsecond) && n%int64(Nanosecond) == 0 && n%int64(Microsecond) == 0:
		return fmt.Sprintf("%s%dus", neg, n/int64(Microsecond))
	default:
		return fmt.Sprintf("%s%dns", neg, n)
	}
}
