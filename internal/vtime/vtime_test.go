package vtime

import (
	"testing"
	"testing/quick"
)

func TestAddSaturates(t *testing.T) {
	if got := Infinity.Add(5); got != Infinity {
		t.Fatalf("Infinity.Add(5) = %v, want Infinity", got)
	}
	near := Infinity - 3
	if got := near.Add(10); got != Infinity {
		t.Fatalf("near-overflow Add = %v, want Infinity", got)
	}
	if got := Time(100).Add(23); got != 123 {
		t.Fatalf("100.Add(23) = %v, want 123", got)
	}
	if got := Time(100).Add(-40); got != 60 {
		t.Fatalf("100.Add(-40) = %v, want 60", got)
	}
}

func TestComparisons(t *testing.T) {
	if !Time(1).Before(2) || Time(2).Before(1) || Time(2).Before(2) {
		t.Fatal("Before misbehaves")
	}
	if !Time(2).After(1) || Time(1).After(2) || Time(2).After(2) {
		t.Fatal("After misbehaves")
	}
	if !Infinity.IsInfinite() || Time(0).IsInfinite() {
		t.Fatal("IsInfinite misbehaves")
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatal("Min misbehaves")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Max misbehaves")
	}
	if MinOf() != Infinity {
		t.Fatal("MinOf() should be Infinity")
	}
	if MinOf(7, 2, 9, Infinity) != 2 {
		t.Fatal("MinOf picks wrong element")
	}
}

func TestSub(t *testing.T) {
	if d := Time(50).Sub(20); d != 30 {
		t.Fatalf("Sub = %v, want 30", d)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Infinity, "inf"},
		{0, "0ns"},
		{42, "42ns"},
		{Time(3 * Microsecond), "3us"},
		{Time(2 * Millisecond), "2ms"},
		{Time(1500 * Microsecond), "1.500ms"},
		{Time(2 * Second), "2s"},
		{Time(2*Second + 250*Millisecond), "2.250s"},
		{-42, "-42ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: Add is monotone in the duration for non-negative durations.
func TestAddMonotoneProperty(t *testing.T) {
	f := func(base int32, d1, d2 uint16) bool {
		b := Time(base)
		lo, hi := Duration(d1), Duration(d2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return !b.Add(hi).Before(b.Add(lo))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Min/Max are commutative and bracket their arguments.
func TestMinMaxProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		mn, mx := Min(x, y), Max(x, y)
		return mn == Min(y, x) && mx == Max(y, x) &&
			!mn.After(x) && !mn.After(y) && !mx.Before(x) && !mx.Before(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
