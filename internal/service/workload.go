package service

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// Spec is a session's creation request: which workload, its seed,
// and its shape. Zero-valued shape fields take workload defaults.
type Spec struct {
	ID       string `json:"id,omitempty"`
	Workload string `json:"workload,omitempty"` // "fan" (default) or "modemsite"
	Seed     int64  `json:"seed,omitempty"`

	// AutoRun launches a free-running scheduler at create time
	// (sessions designers attach to and co-simulate against) instead
	// of advancing under explicit Step calls. Nil takes the workload
	// default: true for attach-driven workloads (modemsite), false
	// otherwise — newWorkload resolves it, so the default is the same
	// whichever encoding (JSON or form) the create request used.
	AutoRun *bool `json:"auto_run,omitempty"`

	// fan shape
	Fanout    int `json:"fanout,omitempty"`
	Rounds    int `json:"rounds,omitempty"`
	WorkIters int `json:"work_iters,omitempty"`

	// modemsite shape
	PageKB int    `json:"page_kb,omitempty"`
	Images int    `json:"images,omitempty"`
	Level  string `json:"level,omitempty"`
}

// Workload builds a session's component graph and declares its
// resource envelope.
type Workload interface {
	// Footprint is the session's accounted memory cost in bytes —
	// the admission-control currency. An estimate, but a
	// deterministic one: the same spec always accounts the same.
	Footprint() int64
	// Horizon is the virtual time by which the workload is finished,
	// or vtime.Infinity for open-ended (attach-driven) workloads.
	Horizon() vtime.Time
	// Install builds the components into the session's subsystem.
	Install(sub *core.Subsystem) error
}

// Attacher is implemented by workloads that accept designer
// endpoints over the node's shared listener.
type Attacher interface {
	Attach(sub *core.Subsystem, ep *channel.Endpoint)
}

const (
	WorkloadFan       = "fan"
	WorkloadModemSite = "modemsite"
)

// newWorkload validates the spec, fills defaults in place, and
// builds the workload.
func newWorkload(spec *Spec) (Workload, error) {
	if spec.Workload == "" {
		spec.Workload = WorkloadFan
	}
	if spec.AutoRun == nil {
		// Attach-driven workloads default to free-running so a
		// designer can dial in and co-simulate immediately.
		autoRun := spec.Workload == WorkloadModemSite
		spec.AutoRun = &autoRun
	}
	switch spec.Workload {
	case WorkloadFan:
		if spec.Fanout <= 0 {
			spec.Fanout = 4
		}
		if spec.Rounds <= 0 {
			spec.Rounds = 8
		}
		if spec.WorkIters <= 0 {
			spec.WorkIters = 256
		}
		if spec.Fanout > 1024 {
			return nil, &SpecError{Reason: fmt.Sprintf("fanout %d exceeds 1024", spec.Fanout)}
		}
		if spec.Rounds > 1_000_000 {
			return nil, &SpecError{Reason: fmt.Sprintf("rounds %d exceeds 1000000", spec.Rounds)}
		}
		return &fanWorkload{spec: *spec}, nil
	case WorkloadModemSite:
		cfg := wubbleu.DefaultConfig()
		if spec.PageKB > 0 {
			cfg.PageSize = spec.PageKB * 1024
		}
		if spec.Images > 0 {
			cfg.Images = spec.Images
		}
		if spec.Level != "" {
			cfg.Level = spec.Level
		}
		return &modemWorkload{spec: *spec, cfg: cfg}, nil
	default:
		return nil, &SpecError{Reason: fmt.Sprintf("unknown workload %q", spec.Workload)}
	}
}

// ---- fan: a seeded synthetic fan-out/compute workload ----
//
// One source broadcasts Rounds seeded jobs on a shared net; Fanout
// services each hash every job for WorkIters xorshift iterations and
// emit a result on a private lane. All activity is pure virtual time
// (no wall sleeps), values derive from the seed, and every emission
// is a net drive — so the session digest is a dense witness of the
// whole computation.

const fanPeriod = 10 * vtime.Millisecond

type fanWorkload struct{ spec Spec }

func (w *fanWorkload) Footprint() int64 {
	return int64(w.spec.Fanout+2) * 32 * 1024
}

func (w *fanWorkload) Horizon() vtime.Time {
	return vtime.Time(0).Add(vtime.Duration(w.spec.Rounds+2) * fanPeriod)
}

func (w *fanWorkload) Install(sub *core.Subsystem) error {
	jobs, err := sub.NewNet("jobs", vtime.Millisecond)
	if err != nil {
		return err
	}
	src, err := sub.NewComponent("source", &fanSource{
		rounds: w.spec.Rounds,
		state:  mix(uint64(w.spec.Seed)),
	})
	if err != nil {
		return err
	}
	src.AddPort("out")
	if err := sub.Connect(jobs, src.Port("out")); err != nil {
		return err
	}
	for i := 0; i < w.spec.Fanout; i++ {
		lane, err := sub.NewNet(fmt.Sprintf("lane%d", i), vtime.Millisecond)
		if err != nil {
			return err
		}
		c, err := sub.NewComponent(fmt.Sprintf("svc%d", i), &fanService{
			iters: w.spec.WorkIters,
			salt:  mix(uint64(w.spec.Seed) ^ uint64(i+1)),
			cost:  vtime.Duration(i%7+1) * 100 * vtime.Microsecond,
		})
		if err != nil {
			return err
		}
		c.AddPort("in")
		c.AddPort("out")
		if err := sub.Connect(jobs, c.Port("in")); err != nil {
			return err
		}
		if err := sub.Connect(lane, c.Port("out")); err != nil {
			return err
		}
	}
	return nil
}

// mix is splitmix64's finalizer: spreads small seeds across the word.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

type fanSource struct {
	rounds int
	state  uint64
}

func (f *fanSource) Run(p *core.Proc) error {
	for i := 0; i < f.rounds; i++ {
		f.state = xorshift(f.state | 1)
		p.Send("out", int(f.state>>16))
		p.Delay(fanPeriod)
	}
	return nil
}

type fanService struct {
	iters int
	salt  uint64
	cost  vtime.Duration
}

func (s *fanService) Run(p *core.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		x := uint64(m.Value.(int)) ^ s.salt
		for i := 0; i < s.iters; i++ {
			x = xorshift(x | 1)
		}
		p.Advance(s.cost)
		p.Send("out", int(x>>16))
	}
}

// ---- modemsite: the paper's remote modem-site half ----
//
// The WubbleU modem-site fragment (ASIC + dedicated server) hosted
// as a tenant: a designer's handheld half attaches over the node's
// shared listener by dialing the session id and binding the split
// "dma" net, exactly as the single-tenant pianode mode works.

type modemWorkload struct {
	spec Spec
	cfg  wubbleu.Config
}

func (w *modemWorkload) Footprint() int64 {
	return int64(w.cfg.PageSize)*int64(w.cfg.Images+1) + 256*1024
}

func (w *modemWorkload) Horizon() vtime.Time { return vtime.Infinity }

func (w *modemWorkload) Install(sub *core.Subsystem) error {
	_, err := wubbleu.InstallModemSite(sub, w.cfg)
	return err
}

func (w *modemWorkload) Attach(sub *core.Subsystem, ep *channel.Endpoint) {
	_ = ep.BindNet(sub.Net("dma"), "dma")
}
