package service

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

const stepChunk = 20 * vtime.Millisecond

// isolatedDigest runs the spec alone, sequentially, in its own
// catalog — the reference every multi-tenant run must reproduce.
func isolatedDigest(t *testing.T, spec Spec) uint64 {
	t.Helper()
	c := NewCatalog(Config{})
	defer c.Close()
	info, err := c.Create(spec)
	if err != nil {
		t.Fatalf("isolated create: %v", err)
	}
	info, err = c.Step(info.ID, 0, 0)
	if err != nil {
		t.Fatalf("isolated step: %v", err)
	}
	if info.State != StateDone {
		t.Fatalf("isolated session state %q, want done", info.State)
	}
	return info.DigestU64
}

// stepAll drives every given session to done with interleaved fixed
// chunks — the fair-share pattern — and returns the final infos.
func stepAll(t *testing.T, c *Catalog, ids []string) map[string]Info {
	t.Helper()
	final := make(map[string]Info, len(ids))
	for round := 0; len(final) < len(ids); round++ {
		if round > 1000 {
			t.Fatalf("sessions did not finish after %d rounds", round)
		}
		for _, id := range ids {
			if _, done := final[id]; done {
				continue
			}
			info, err := c.Step(id, 0, stepChunk)
			if err != nil {
				t.Fatalf("step %s: %v", id, err)
			}
			if info.State == StateDone {
				final[id] = info
			}
		}
	}
	return final
}

func TestSessionLifecycle(t *testing.T) {
	c := NewCatalog(Config{})
	defer c.Close()

	info, err := c.Create(Spec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateReady || info.Rev != 1 {
		t.Fatalf("fresh session: state %q rev %d, want ready/1", info.State, info.Rev)
	}
	if info.Workload != WorkloadFan {
		t.Fatalf("default workload %q, want fan", info.Workload)
	}

	// Each step bumps the revision; the CAS precondition holds.
	mid, err := c.Step(info.ID, info.Rev, stepChunk)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Rev != info.Rev+1 {
		t.Fatalf("rev after step %d, want %d", mid.Rev, info.Rev+1)
	}

	done, err := c.Step(info.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Steps == 0 || done.Drives == 0 || done.DigestU64 == 0 {
		t.Fatalf("finished session: %+v", done)
	}

	// Done sessions step idempotently.
	again, err := c.Step(info.ID, 0, 0)
	if err != nil || again.DigestU64 != done.DigestU64 {
		t.Fatalf("idempotent step: %v %+v", err, again)
	}

	if _, err := c.Stop(info.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after stop: %v, want ErrNotFound", err)
	}
	st := c.Stats()
	if st.Live != 0 || st.Created != 1 || st.Stopped != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTypedErrors(t *testing.T) {
	c := NewCatalog(Config{})
	defer c.Close()

	var nf *NotFoundError
	if _, err := c.Step("ghost", 0, stepChunk); !errors.As(err, &nf) || nf.ID != "ghost" {
		t.Fatalf("step ghost: %v", err)
	}
	if _, err := c.Stop("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stop ghost: %v", err)
	}

	if _, err := c.Create(Spec{Workload: "nonesuch"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad workload: %v", err)
	}

	info, err := c.Create(Spec{ID: "dup", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var conf *ConflictError
	if _, err := c.Create(Spec{ID: "dup"}); !errors.As(err, &conf) {
		t.Fatalf("duplicate create: %v", err)
	}

	// A stale revision loses the CAS.
	if _, err := c.Step("dup", info.Rev+5, stepChunk); !errors.As(err, &conf) || !errors.Is(err, ErrConflict) {
		t.Fatalf("stale step: %v", err)
	}
	if _, err := c.Stop("dup", info.Rev+5); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale stop: %v", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	c := NewCatalog(Config{Limits: Limits{MaxSessions: 3}})
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Create(Spec{}); err != nil {
			t.Fatal(err)
		}
	}
	var be *BudgetError
	if _, err := c.Create(Spec{}); !errors.As(err, &be) || be.Limit != "sessions" || be.Evicted {
		t.Fatalf("over MaxSessions: %v", err)
	}
	if got := c.Stats().Rejected; got != 1 {
		t.Fatalf("rejected %d, want 1", got)
	}

	// Per-session and aggregate memory budgets. A fan session's
	// footprint is (fanout+2)*32KiB.
	cm := NewCatalog(Config{Limits: Limits{MaxSessionMemBytes: 256 * 1024, MaxMemBytes: 512 * 1024}})
	defer cm.Close()
	if _, err := cm.Create(Spec{Fanout: 64}); !errors.As(err, &be) || be.Limit != "session-memory" {
		t.Fatalf("oversized session: %v", err)
	}
	if _, err := cm.Create(Spec{Fanout: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Create(Spec{Fanout: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Create(Spec{Fanout: 4}); !errors.As(err, &be) || be.Limit != "memory" {
		t.Fatalf("over aggregate memory: %v", err)
	}
	// Stopping a tenant releases its footprint.
	infos, _ := cm.List()
	if _, err := cm.Stop(infos[0].ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Create(Spec{Fanout: 4}); err != nil {
		t.Fatalf("create after release: %v", err)
	}
}

// TestStepBudgetEvictionDeterministic: the same workload stepped the
// same way must cross its step budget at the same boundary — same
// chunk index, same step count — on every run, and the evicted
// session must be torn down but observable.
func TestStepBudgetEvictionDeterministic(t *testing.T) {
	run := func() (chunks int, steps int64) {
		c := NewCatalog(Config{Limits: Limits{MaxSteps: 40}})
		defer c.Close()
		info, err := c.Create(Spec{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; ; i++ {
			var serr error
			info, serr = c.Step(info.ID, 0, 10*vtime.Millisecond)
			if serr != nil {
				var be *BudgetError
				if !errors.As(serr, &be) || !be.Evicted || be.Limit != "steps" {
					t.Fatalf("unexpected step error: %v", serr)
				}
				if got := c.Stats().Evicted; got != 1 {
					t.Fatalf("evicted count %d", got)
				}
				// The record survives for inspection, then Stop reaps it.
				got, gerr := c.Get(info.ID)
				if gerr != nil || got.State != StateEvicted {
					t.Fatalf("evicted record: %+v %v", got, gerr)
				}
				if _, serr := c.Step(info.ID, 0, stepChunk); !errors.Is(serr, ErrOverBudget) {
					t.Fatalf("step after eviction: %v", serr)
				}
				if _, serr := c.Stop(info.ID, 0); serr != nil {
					t.Fatalf("stop evicted: %v", serr)
				}
				return i, info.Steps
			}
			if i > 1000 {
				t.Fatal("never evicted")
			}
		}
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("eviction boundary diverged: run1 chunk %d steps %d, run2 chunk %d steps %d", c1, s1, c2, s2)
	}
}

// TestFairShareDeterminism: many tenants stepped interleaved on one
// shared pool must each produce the digest of their isolated,
// sequential run — at every pool size.
func TestFairShareDeterminism(t *testing.T) {
	const tenants = 12
	specs := make([]Spec, tenants)
	refs := make([]uint64, tenants)
	for i := range specs {
		specs[i] = Spec{ID: fmt.Sprintf("t-%d", i), Seed: int64(100 + i), Fanout: 3 + i%4, Rounds: 6 + i%5}
		refs[i] = isolatedDigest(t, specs[i])
	}
	for _, workers := range []int{0, 2, 4} {
		c := NewCatalog(Config{Workers: workers})
		ids := make([]string, tenants)
		for i, sp := range specs {
			info, err := c.Create(sp)
			if err != nil {
				t.Fatalf("workers=%d create %d: %v", workers, i, err)
			}
			ids[i] = info.ID
		}
		final := stepAll(t, c, ids)
		for i, id := range ids {
			if got := final[id].DigestU64; got != refs[i] {
				t.Fatalf("workers=%d tenant %s digest %016x, want %016x", workers, id, got, refs[i])
			}
		}
		c.Close()
	}
}

// TestServiceChurn: concurrent clients create, run, verify and stop
// sessions through one catalog on one shared pool. Run under -race
// by `make service`.
func TestServiceChurn(t *testing.T) {
	const (
		clients    = 6
		perClient  = 8
		distinctWL = 4
	)
	refs := make([]uint64, distinctWL)
	for i := range refs {
		refs[i] = isolatedDigest(t, Spec{Seed: int64(i), Fanout: 2 + i, Rounds: 5})
	}
	reg := metrics.NewRegistry()
	c := NewCatalog(Config{Workers: 4, Metrics: reg})
	defer c.Close()

	// Scrape continuously while sessions churn: Catalog.collect reads
	// each session's private registry, which build() publishes after
	// the session is visible in the catalog.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	defer scrapeWG.Wait()
	defer close(stopScrape)

	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				w := (g + k) % distinctWL
				info, err := c.Create(Spec{Seed: int64(w), Fanout: 2 + w, Rounds: 5})
				if err != nil {
					errs <- fmt.Errorf("client %d create: %w", g, err)
					return
				}
				info, err = c.Step(info.ID, 0, 0)
				if err != nil {
					errs <- fmt.Errorf("client %d step: %w", g, err)
					return
				}
				if info.DigestU64 != refs[w] {
					errs <- fmt.Errorf("client %d session %s digest %016x, want %016x", g, info.ID, info.DigestU64, refs[w])
					return
				}
				if _, err := c.Stop(info.ID, 0); err != nil {
					errs <- fmt.Errorf("client %d stop: %w", g, err)
					return
				}
				// Exercise the read paths concurrently with churn.
				c.List()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Live != 0 || st.Created != clients*perClient || st.Stopped != clients*perClient {
		t.Fatalf("stats after churn: %+v", st)
	}
}

// TestMetricsAggregation: the shared registry scrape must carry
// catalog-level series and every tenant's private series re-labelled
// with session="<id>".
func TestMetricsAggregation(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCatalog(Config{Metrics: reg})
	defer c.Close()
	if _, err := c.Create(Spec{ID: "alpha", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(Spec{ID: "beta", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step("alpha", 0, 0); err != nil {
		t.Fatal(err)
	}

	byName := map[string]int64{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s.Value
	}
	if got := byName["pia_service_sessions_live"]; got != 2 {
		t.Fatalf("sessions_live %d, want 2", got)
	}
	if got := byName[`pia_sched_steps{sub="alpha",session="alpha"}`]; got == 0 {
		keys := make([]string, 0, len(byName))
		for k := range byName {
			if strings.Contains(k, "session=") {
				keys = append(keys, k)
			}
		}
		t.Fatalf("no stepped-session series for alpha; session-labelled series: %v", keys)
	}
	if _, ok := byName[`pia_sched_steps{sub="beta",session="beta"}`]; !ok {
		t.Fatalf("beta series missing from aggregate scrape")
	}
}

// TestConcurrentStopRunning: racing DELETEs on a free-running session
// (a client retry, or Catalog.Close racing an HTTP DELETE) must all
// return — exactly one wins, the rest bounce with NotFound. Regression
// test for the one-shot runDone send that left every loser blocked on
// the channel forever.
func TestConcurrentStopRunning(t *testing.T) {
	autoRun := true
	c := NewCatalog(Config{})
	defer c.Close()
	info, err := c.Create(Spec{AutoRun: &autoRun, Rounds: 100_000, WorkIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	const stoppers = 8
	errs := make(chan error, stoppers)
	var wg sync.WaitGroup
	for i := 0; i < stoppers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Stop(info.ID, 0)
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	var ok, notFound int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrNotFound):
			notFound++
		default:
			t.Fatalf("concurrent stop: %v", err)
		}
	}
	if ok != 1 || notFound != stoppers-1 {
		t.Fatalf("concurrent stops: %d succeeded, %d not-found; want 1 and %d", ok, notFound, stoppers-1)
	}
}

// TestStopDuringStep: while a Step runs the scheduler, the session
// lock is released — Get stays responsive, a second Step conflicts
// instead of queueing, and Stop halts the run and reaps the session.
func TestStopDuringStep(t *testing.T) {
	c := NewCatalog(Config{})
	defer c.Close()
	info, err := c.Create(Spec{Rounds: 100_000, WorkIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	stepErr := make(chan error, 1)
	go func() {
		_, err := c.Step(info.ID, 0, 0)
		stepErr <- err
	}()
	// Get must not block behind the in-flight step; poll it until the
	// scheduler has demonstrably started.
	for {
		got, err := c.Get(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Steps > 0 {
			break
		}
		runtime.Gosched()
	}
	if _, err := c.Step(info.ID, 0, stepChunk); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent step: %v, want ErrConflict", err)
	}
	if _, err := c.Stop(info.ID, 0); err != nil {
		t.Fatalf("stop during step: %v", err)
	}
	if err := <-stepErr; err != nil && !errors.Is(err, core.ErrStopped) {
		t.Fatalf("interrupted step: %v", err)
	}
	if _, err := c.Get(info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after stop: %v", err)
	}
}

// TestCreateRollbackBouncesLateLookups: when build fails after the
// session is already published in the catalog, a Step that grabbed the
// session pointer during the window must bounce with NotFound — not
// run the half-built subsystem — and the catalog must roll back its
// counters and release the id.
func TestCreateRollbackBouncesLateLookups(t *testing.T) {
	c := NewCatalog(Config{})
	defer c.Close()
	release := make(chan struct{})
	c.buildFailpoint = func() error {
		<-release
		return &SpecError{Reason: "injected build failure"}
	}
	createErr := make(chan error, 1)
	go func() {
		_, err := c.Create(Spec{ID: "ghost"})
		createErr <- err
	}()
	// The session is visible in the catalog while build is in flight.
	for {
		if _, err := c.lookup("ghost"); err == nil {
			break
		}
		runtime.Gosched()
	}
	stepErr := make(chan error, 1)
	go func() {
		_, err := c.Step("ghost", 0, stepChunk)
		stepErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the Step park on the session lock
	close(release)
	if err := <-createErr; !errors.Is(err, ErrBadSpec) {
		t.Fatalf("failed create: %v", err)
	}
	if err := <-stepErr; !errors.Is(err, ErrNotFound) {
		t.Fatalf("step on rolled-back session: %v, want ErrNotFound", err)
	}
	if st := c.Stats(); st.Live != 0 || st.Created != 0 || st.Footprint != 0 {
		t.Fatalf("stats after rollback: %+v", st)
	}
	// The id is free again.
	c.buildFailpoint = nil
	if _, err := c.Create(Spec{ID: "ghost"}); err != nil {
		t.Fatalf("recreate after rollback: %v", err)
	}
}

// TestCatalogClose: Close stops everything and rejects new creates.
func TestCatalogClose(t *testing.T) {
	c := NewCatalog(Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, err := c.Create(Spec{Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if st := c.Stats(); st.Live != 0 {
		t.Fatalf("live after close: %+v", st)
	}
	if _, err := c.Create(Spec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
}
