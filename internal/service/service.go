// Package service turns a pianode host into a multi-tenant
// simulation service: a catalog of independent simulation sessions
// multiplexed over one node's shared data listener and one shared
// bounded worker pool.
//
// Each session owns a private subsystem named by its session id, so
// the node's ordinary hello routing (dials name the subsystem they
// want) is exactly the session-id routing the service needs: a
// designer attaches to session "s-7" by dialing the shared listener
// with remote subsystem "s-7". Sessions carry their own seed and
// config, a revision counter bumped by every lifecycle transition
// (create, attach, step, stop), a per-session metrics registry, and a
// running FNV-64a digest over their drive stream — the determinism
// witness: a tenant's digest must be bit-identical to the same
// workload run alone in its own process.
//
// Admission control and budgets are deterministic: a create that
// would exceed MaxSessions or the memory budgets is rejected with a
// typed BudgetError before any resources are built, and a session
// whose cumulative scheduler steps exceed MaxSteps is evicted at the
// step boundary that crossed the limit — the same boundary on every
// run of the same workload.
package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/vtime"
)

// Sentinel errors, matchable with errors.Is through the typed
// wrappers below.
var (
	ErrNotFound   = errors.New("no such session")
	ErrConflict   = errors.New("session conflict")
	ErrOverBudget = errors.New("over budget")
	ErrBadSpec    = errors.New("bad session spec")
	ErrClosed     = errors.New("catalog closed")
)

// NotFoundError reports an operation on an unknown session id.
type NotFoundError struct{ ID string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("service: no such session %q", e.ID) }
func (e *NotFoundError) Unwrap() error { return ErrNotFound }

// ConflictError reports a duplicate create, a lost revision CAS, or
// an operation illegal in the session's current state.
type ConflictError struct {
	ID         string
	Want, Have uint64 // CAS revisions; zero for non-CAS conflicts
	Reason     string
}

func (e *ConflictError) Error() string {
	if e.Want != 0 {
		return fmt.Sprintf("service: session %q: %s (want rev %d, have %d)", e.ID, e.Reason, e.Want, e.Have)
	}
	return fmt.Sprintf("service: session %q: %s", e.ID, e.Reason)
}
func (e *ConflictError) Unwrap() error { return ErrConflict }

// BudgetError reports an admission rejection (Evicted false) or a
// budget eviction of a live session (Evicted true).
type BudgetError struct {
	ID        string
	Limit     string // "sessions", "memory", "session-memory", "steps"
	Used, Max int64
	Evicted   bool
}

func (e *BudgetError) Error() string {
	verb := "rejected"
	if e.Evicted {
		verb = "evicted"
	}
	return fmt.Sprintf("service: session %q %s: %s budget (%d > %d)", e.ID, verb, e.Limit, e.Used, e.Max)
}
func (e *BudgetError) Unwrap() error { return ErrOverBudget }

// SpecError reports an invalid session spec or parameter.
type SpecError struct{ Reason string }

func (e *SpecError) Error() string { return "service: " + e.Reason }
func (e *SpecError) Unwrap() error { return ErrBadSpec }

// Limits bound what tenants may consume. Zero means unlimited.
type Limits struct {
	MaxSessions        int   // concurrent sessions in the catalog
	MaxMemBytes        int64 // summed footprint of live sessions
	MaxSessionMemBytes int64 // footprint of any single session
	MaxSteps           int64 // cumulative scheduler steps per session
}

// Config configures a Catalog.
type Config struct {
	// Workers sizes the shared worker pool fair-shared across all
	// sessions' parallel rounds. 0 runs every session sequentially.
	Workers int

	Limits Limits

	// Node, when set, hosts every session's subsystem under the
	// session id so designers can attach over the node's shared data
	// listener.
	Node *node.Node

	// Metrics, when set, receives the catalog-level series and an
	// aggregation of every session's private registry with a
	// session="<id>" label added to each sample.
	Metrics *metrics.Registry

	// Flight, when set, receives session lifecycle transitions on its
	// streaming hub and records them in its flight recorder; session
	// failures and budget evictions trip the recorder into a
	// post-mortem dump.
	Flight *flight.Observer

	// AttributionTopN, when > 0 (and Metrics is set), turns on
	// per-component wall-cost attribution inside every session's
	// private registry: each tenant's hot components surface under
	// their session="<id>" label in the shared scrape.
	AttributionTopN int
}

// Catalog is the session catalog: the service's source of truth for
// which sessions exist, their lifecycle state, and their budgets.
type Catalog struct {
	cfg  Config
	pool *core.SharedPool

	mu        sync.Mutex
	sessions  map[string]*Session
	rev       uint64 // catalog revision: bumps on create/step/stop/evict
	nextID    uint64
	closed    bool
	footprint int64 // summed live-session footprints

	created, stopped, evicted, rejected int64

	// buildFailpoint, when non-nil (tests only), runs mid-build and
	// may inject a failure: the rollback path runs after the session
	// is already published in c.sessions and has to bounce concurrent
	// lookups, so it needs a deterministic trigger.
	buildFailpoint func() error
}

// NewCatalog builds a catalog, starting the shared pool when
// cfg.Workers > 0 and registering the aggregation collector when
// cfg.Metrics is set.
func NewCatalog(cfg Config) *Catalog {
	c := &Catalog{cfg: cfg, sessions: make(map[string]*Session)}
	if cfg.Workers > 0 {
		c.pool = core.NewSharedPool(cfg.Workers)
	}
	if cfg.Metrics != nil {
		cfg.Metrics.AddCollector(c.collect)
	}
	return c
}

// Create admits and builds a new session. The id is taken from the
// spec or allocated; duplicates are a ConflictError, budget misses a
// BudgetError (counted as rejections), bad specs a SpecError.
func (c *Catalog) Create(spec Spec) (Info, error) {
	wl, err := newWorkload(&spec)
	if err != nil {
		return Info{}, err
	}
	fp := wl.Footprint()

	sess := &Session{spec: spec, wl: wl, state: StateReady, rev: 1, digest: fnv.New64a()}
	// The session lock is held across the build below so a concurrent
	// Step/Stop that finds the session in the map blocks until the
	// subsystem exists. Lock order is always session → catalog.
	sess.mu.Lock()
	defer sess.mu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Info{}, ErrClosed
	}
	id := spec.ID
	if id == "" {
		c.nextID++
		id = fmt.Sprintf("s-%d", c.nextID)
	}
	if _, dup := c.sessions[id]; dup {
		c.mu.Unlock()
		return Info{}, &ConflictError{ID: id, Reason: "session id already exists"}
	}
	if max := c.cfg.Limits.MaxSessions; max > 0 && len(c.sessions) >= max {
		c.rejected++
		c.mu.Unlock()
		return Info{}, &BudgetError{ID: id, Limit: "sessions", Used: int64(len(c.sessions) + 1), Max: int64(max)}
	}
	if max := c.cfg.Limits.MaxSessionMemBytes; max > 0 && fp > max {
		c.rejected++
		c.mu.Unlock()
		return Info{}, &BudgetError{ID: id, Limit: "session-memory", Used: fp, Max: max}
	}
	if max := c.cfg.Limits.MaxMemBytes; max > 0 && c.footprint+fp > max {
		c.rejected++
		c.mu.Unlock()
		return Info{}, &BudgetError{ID: id, Limit: "memory", Used: c.footprint + fp, Max: max}
	}
	sess.id = id
	sess.spec.ID = id
	c.sessions[id] = sess
	c.footprint += fp
	c.created++
	c.rev++
	c.mu.Unlock()

	if err := c.build(sess); err != nil {
		// A concurrent Step/Stop may already hold the session pointer
		// and be parked on sess.mu; flip the state before the deferred
		// unlock so late lookups bounce with NotFound instead of
		// running the half-built subsystem.
		sess.state = StateStopped
		c.teardownLocked(sess)
		c.mu.Lock()
		delete(c.sessions, id)
		c.footprint -= fp
		c.created--
		c.rev++
		c.mu.Unlock()
		return Info{}, err
	}
	return sess.infoLocked(), nil
}

// build constructs the session's subsystem, workload, digest tap,
// metrics registry and node hosting. Called with sess.mu held.
func (c *Catalog) build(sess *Session) error {
	sub := core.NewSubsystem(sess.id)
	sess.sub = sub
	sub.OnDrive = func(net, src string, t vtime.Time, v any) {
		sess.dmu.Lock()
		fmt.Fprintf(sess.digest, "%s|%s|%d|%v\n", net, src, t, v)
		sess.dmu.Unlock()
	}
	if err := sess.wl.Install(sub); err != nil {
		return &SpecError{Reason: fmt.Sprintf("install %s: %v", sess.spec.Workload, err)}
	}
	if c.buildFailpoint != nil {
		if err := c.buildFailpoint(); err != nil {
			return err
		}
	}
	if c.pool != nil {
		sub.SetPool(c.pool)
	}
	if c.cfg.Metrics != nil {
		sess.reg = metrics.NewRegistry()
		sub.EnableMetrics(sess.reg)
		if c.cfg.AttributionTopN > 0 {
			sub.EnableCostAttribution(sess.reg, c.cfg.AttributionTopN)
		}
	}
	sess.flight = c.cfg.Flight
	sess.flight.Event("session", sess.id, "created: workload "+sess.spec.Workload, 0)
	if c.cfg.Node != nil {
		h := c.cfg.Node.Host(sub)
		h.OnChannel = sess.onChannel
		// Peers may attach and inject at any time: the scheduler must
		// park instead of exiting when the event queue drains.
		sub.AddExternal()
		sess.hosted = true
	}
	if sess.spec.AutoRun != nil && *sess.spec.AutoRun {
		sess.startAuto()
	}
	return nil
}

// lookup returns the live session or a typed not-found error.
func (c *Catalog) lookup(id string) (*Session, error) {
	c.mu.Lock()
	sess := c.sessions[id]
	c.mu.Unlock()
	if sess == nil {
		return nil, &NotFoundError{ID: id}
	}
	return sess, nil
}

// Get returns a point-in-time view of one session.
func (c *Catalog) Get(id string) (Info, error) {
	sess, err := c.lookup(id)
	if err != nil {
		return Info{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.infoLocked(), nil
}

// List returns every live session, sorted by id, plus the catalog
// revision at the time of the copy.
func (c *Catalog) List() ([]Info, uint64) {
	c.mu.Lock()
	rev := c.rev
	all := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		all = append(all, s)
	}
	c.mu.Unlock()
	infos := make([]Info, 0, len(all))
	for _, s := range all {
		s.mu.Lock()
		infos = append(infos, s.infoLocked())
		s.mu.Unlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos, rev
}

// Step advances the session's virtual time by d (or to the
// workload's horizon when d <= 0) and bumps its revision. rev, when
// non-zero, is a compare-and-swap precondition on the current
// revision. Crossing the step budget evicts the session and reports
// a BudgetError with Evicted set.
func (c *Catalog) Step(id string, rev uint64, d vtime.Duration) (Info, error) {
	sess, err := c.lookup(id)
	if err != nil {
		return Info{}, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if rev != 0 && rev != sess.rev {
		return sess.infoLocked(), &ConflictError{ID: id, Want: rev, Have: sess.rev, Reason: "revision mismatch"}
	}
	if sess.stepping {
		return sess.infoLocked(), &ConflictError{ID: id, Reason: "a step is already in progress"}
	}
	switch sess.state {
	case StateEvicted:
		return sess.infoLocked(), &BudgetError{ID: id, Limit: sess.evictLimit, Used: sess.evictUsed, Max: sess.evictMax, Evicted: true}
	case StateFailed:
		return sess.infoLocked(), fmt.Errorf("service: session %q failed: %w", id, sess.runErr)
	case StateDone:
		return sess.infoLocked(), nil // idempotent: nothing left to run
	case StateRunning:
		return sess.infoLocked(), &ConflictError{ID: id, Reason: "session is free-running (created with auto_run)"}
	case StateStopped:
		return sess.infoLocked(), &NotFoundError{ID: id}
	}
	if d <= 0 {
		h := sess.wl.Horizon()
		if h == vtime.Infinity {
			return sess.infoLocked(), &SpecError{Reason: fmt.Sprintf("workload %s is unbounded: step needs an explicit until", sess.spec.Workload)}
		}
		if sess.cursor < h {
			sess.cursor = h
		}
	} else {
		sess.cursor = sess.cursor.Add(d)
	}
	// Run without the session lock so read-only endpoints (Get, List,
	// /metrics, /healthz) stay responsive during a long step — hosted
	// sessions can stall in Run waiting on a peer's safe-time. The
	// stepping flag makes concurrent lifecycle ops conflict instead of
	// queueing, and stepDone lets Stop wait for the run to settle.
	sess.stepping = true
	sess.stepDone = make(chan struct{})
	cursor, sub := sess.cursor, sess.sub
	sess.mu.Unlock()
	runErr := sub.Run(cursor)
	sess.mu.Lock()
	sess.stepping = false
	close(sess.stepDone)
	sess.stepDone = nil
	sess.rev++
	c.bumpRev()
	if runErr != nil && !errors.Is(runErr, core.ErrStopped) {
		sess.state = StateFailed
		sess.runErr = runErr
		sess.flight.Event("session", id, "failed: "+runErr.Error(), sess.sub.Stats().Steps)
		sess.flight.Trip("session-failed", id+": "+runErr.Error())
		return sess.infoLocked(), runErr
	}
	if h := sess.wl.Horizon(); (h != vtime.Infinity && sess.cursor >= h) || sess.sub.NextEventTime() == vtime.Infinity {
		sess.state = StateDone
		sess.flight.Event("session", id, "done", sess.sub.Stats().Steps)
	}
	if max := c.cfg.Limits.MaxSteps; max > 0 {
		if steps := sess.sub.Stats().Steps; steps > max {
			c.evictLocked(sess, "steps", steps, max)
			return sess.infoLocked(), &BudgetError{ID: id, Limit: "steps", Used: steps, Max: max, Evicted: true}
		}
	}
	return sess.infoLocked(), nil
}

// Stop tears the session down and removes it from the catalog. rev,
// when non-zero, is a CAS precondition. Stopping an evicted session
// just removes the record (it was already torn down).
func (c *Catalog) Stop(id string, rev uint64) (Info, error) {
	sess, err := c.lookup(id)
	if err != nil {
		return Info{}, err
	}
	sess.mu.Lock()
	if rev != 0 && rev != sess.rev {
		defer sess.mu.Unlock()
		return sess.infoLocked(), &ConflictError{ID: id, Want: rev, Have: sess.rev, Reason: "revision mismatch"}
	}
	if sess.state == StateStopped { // lost a concurrent Stop race
		sess.mu.Unlock()
		return Info{}, &NotFoundError{ID: id}
	}
	// Halt a live scheduler — the auto_run goroutine or an in-flight
	// Step — without holding the lock (the runner takes it to record
	// the outcome). Both channels are closed once the run settles, so
	// every racing Stop wakes; only the first to re-acquire the lock
	// tears down, the rest bounce on the StateStopped re-check.
	var done chan struct{}
	if sess.state == StateRunning {
		done = sess.runDone
	} else if sess.stepping {
		done = sess.stepDone
	}
	if done != nil {
		sess.sub.Stop()
		sess.mu.Unlock()
		<-done
		sess.mu.Lock()
		if sess.state == StateStopped { // lost a concurrent Stop race
			sess.mu.Unlock()
			return Info{}, &NotFoundError{ID: id}
		}
	}
	wasEvicted := sess.state == StateEvicted
	if !wasEvicted {
		c.teardownLocked(sess)
	}
	sess.state = StateStopped
	sess.flight.Event("session", id, "stopped", 0)
	sess.rev++
	info := sess.infoLocked()
	sess.mu.Unlock()

	c.mu.Lock()
	if _, ok := c.sessions[id]; ok {
		delete(c.sessions, id)
		c.stopped++
		if !wasEvicted {
			c.footprint -= sess.wl.Footprint()
		}
		c.rev++
	}
	c.mu.Unlock()
	return info, nil
}

// evictLocked forcibly retires an over-budget session: teardown,
// unhost, pool detach. The record stays in the catalog (state
// evicted) so the tenant can observe why; Stop removes it. Called
// with sess.mu held.
func (c *Catalog) evictLocked(sess *Session, limit string, used, max int64) {
	sess.state = StateEvicted
	sess.evictLimit, sess.evictUsed, sess.evictMax = limit, used, max
	sess.rev++
	sess.flight.Event("session", sess.id, fmt.Sprintf("evicted: %s budget (%d > %d)", limit, used, max), used)
	sess.flight.Trip("session-evicted", fmt.Sprintf("%s: %s budget (%d > %d)", sess.id, limit, used, max))
	c.teardownLocked(sess)
	c.mu.Lock()
	c.evicted++
	c.footprint -= sess.wl.Footprint()
	c.rev++
	c.mu.Unlock()
}

// teardownLocked releases a session's runtime resources. Called with
// sess.mu held and the session not running.
func (c *Catalog) teardownLocked(sess *Session) {
	if sess.sub == nil {
		return
	}
	sess.sub.Teardown()
	if sess.hosted {
		c.cfg.Node.Unhost(sess.id)
		sess.hosted = false
	}
	if c.pool != nil {
		c.pool.Forget(sess.sub)
	}
}

func (c *Catalog) bumpRev() {
	c.mu.Lock()
	c.rev++
	c.mu.Unlock()
}

// Revision returns the catalog revision: a counter bumped by every
// lifecycle transition of any session.
func (c *Catalog) Revision() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rev
}

// Stats is a point-in-time summary of catalog-level counters.
type Stats struct {
	Live      int   `json:"live"`
	Created   int64 `json:"created"`
	Stopped   int64 `json:"stopped"`
	Evicted   int64 `json:"evicted"`
	Rejected  int64 `json:"rejected"`
	Footprint int64 `json:"footprint_bytes"`
}

// Stats returns the catalog counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Live:      len(c.sessions),
		Created:   c.created,
		Stopped:   c.stopped,
		Evicted:   c.evicted,
		Rejected:  c.rejected,
		Footprint: c.footprint,
	}
}

// Close stops every session and joins the shared pool. Creates after
// Close fail with ErrClosed.
func (c *Catalog) Close() {
	c.mu.Lock()
	c.closed = true
	ids := make([]string, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		_, _ = c.Stop(id, 0)
	}
	if c.pool != nil {
		c.pool.Close()
	}
}

// collect is the aggregation collector registered on the shared
// registry: catalog-level series plus every session's private
// registry re-emitted with a session="<id>" label. Lock order note:
// the shared registry's lock is held around this call, and we take
// only the catalog lock inside — never a path that re-enters the
// shared registry.
func (c *Catalog) collect(emit func(metrics.Sample)) {
	c.mu.Lock()
	all := make([]*Session, 0, len(c.sessions))
	for _, s := range c.sessions {
		all = append(all, s)
	}
	counters := []struct {
		name string
		kind string
		v    int64
	}{
		{"pia_service_sessions_live", metrics.KindGauge, int64(len(c.sessions))},
		{"pia_service_footprint_bytes", metrics.KindGauge, c.footprint},
		{"pia_service_catalog_revision", metrics.KindGauge, int64(c.rev)},
		{"pia_service_sessions_created", metrics.KindCounter, c.created},
		{"pia_service_sessions_stopped", metrics.KindCounter, c.stopped},
		{"pia_service_sessions_evicted", metrics.KindCounter, c.evicted},
		{"pia_service_sessions_rejected", metrics.KindCounter, c.rejected},
	}
	c.mu.Unlock()
	for _, kv := range counters {
		emit(metrics.Sample{Name: kv.name, Kind: kv.kind, Value: kv.v})
	}
	for _, s := range all {
		// s.reg is written by build() under s.mu after the session is
		// already published in c.sessions, so it must be read under the
		// same lock. Steps release s.mu while the scheduler runs, so a
		// scrape never blocks behind a long step.
		s.mu.Lock()
		id, reg := s.id, s.reg
		s.mu.Unlock()
		if reg == nil {
			continue
		}
		for _, smp := range reg.Snapshot() {
			smp.Name = metrics.AddLabel(smp.Name, "session", id)
			emit(smp)
		}
	}
}
