package service

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/vtime"
)

// Handler serves the session API over the catalog:
//
//	POST   /sessions            create (form or JSON body: Spec fields)
//	GET    /sessions            list
//	GET    /sessions/{id}       inspect
//	DELETE /sessions/{id}       stop   (?rev= CAS)
//	POST   /sessions/{id}/step  advance (?until=20ms virtual, ?rev= CAS)
//
// Typed catalog errors map to status codes: not-found 404, conflict
// 409, budget 429, bad spec 400, catalog closed 503.
func Handler(c *Catalog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		spec, err := specFromRequest(r)
		if err != nil {
			writeError(w, err)
			return
		}
		info, err := c.Create(spec)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		infos, rev := c.List()
		writeJSON(w, http.StatusOK, map[string]any{"rev": rev, "sessions": infos})
	})
	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		rev, err := revParam(r)
		if err != nil {
			writeError(w, err)
			return
		}
		info, err := c.Stop(r.PathValue("id"), rev)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("POST /sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		rev, err := revParam(r)
		if err != nil {
			writeError(w, err)
			return
		}
		var until vtime.Duration
		if v := r.FormValue("until"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				writeError(w, &SpecError{Reason: "until must be a non-negative duration (virtual), e.g. until=20ms"})
				return
			}
			until = vtime.Duration(d.Nanoseconds())
		}
		info, err := c.Step(r.PathValue("id"), rev, until)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	return mux
}

// specFromRequest decodes a create request: a JSON Spec body when
// Content-Type says so, otherwise form/query parameters.
func specFromRequest(r *http.Request) (Spec, error) {
	var spec Spec
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return Spec{}, &SpecError{Reason: "bad JSON body: " + err.Error()}
		}
		return spec, nil
	}
	if err := r.ParseForm(); err != nil {
		return Spec{}, &SpecError{Reason: "bad form: " + err.Error()}
	}
	spec.ID = r.Form.Get("id")
	spec.Workload = r.Form.Get("workload")
	spec.Level = r.Form.Get("level")
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"fanout", &spec.Fanout},
		{"rounds", &spec.Rounds},
		{"work_iters", &spec.WorkIters},
		{"page_kb", &spec.PageKB},
		{"images", &spec.Images},
	} {
		v := r.Form.Get(f.key)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Spec{}, &SpecError{Reason: f.key + " must be an integer"}
		}
		*f.dst = n
	}
	if v := r.Form.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return Spec{}, &SpecError{Reason: "seed must be an integer"}
		}
		spec.Seed = n
	}
	if v := r.Form.Get("run"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return Spec{}, &SpecError{Reason: "run must be a boolean"}
		}
		spec.AutoRun = &b
	}
	// Workload-dependent auto_run defaults live in newWorkload so
	// JSON-body creates resolve identically.
	return spec, nil
}

func revParam(r *http.Request) (uint64, error) {
	v := r.FormValue("rev")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, &SpecError{Reason: "rev must be a non-negative integer"}
	}
	return n, nil
}

// writeError maps typed catalog errors onto status codes and writes
// a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		code = http.StatusConflict
	case errors.Is(err, ErrOverBudget):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: writing response: %v", err)
	}
}
