package service

import (
	"errors"
	"fmt"
	"hash"
	"sync"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/vtime"
)

// State is a session's lifecycle state.
type State string

const (
	StateReady   State = "ready"   // created; advances via Step
	StateRunning State = "running" // free-running (auto_run) scheduler goroutine
	StateDone    State = "done"    // workload exhausted or horizon reached
	StateFailed  State = "failed"  // a component returned an error
	StateEvicted State = "evicted" // torn down by a budget; record remains
	StateStopped State = "stopped" // terminal; removed from the catalog
)

// Session is one tenant's simulation: a private subsystem (named by
// the session id, which is also its address on the node's shared
// listener), its workload, revision counter, drive digest and
// private metrics registry.
type Session struct {
	id   string
	spec Spec
	wl   Workload

	// dmu guards the drive digest: the scheduler goroutine appends
	// during Run while /healthz, /metrics and List read point-in-time
	// sums.
	dmu    sync.Mutex
	digest hash.Hash64

	// mu guards everything below and serializes lifecycle operations;
	// lock order is session → catalog.
	mu       sync.Mutex
	sub      *core.Subsystem
	reg      *metrics.Registry // private; aggregated by Catalog.collect
	state    State
	rev      uint64
	cursor   vtime.Time // accumulated Step horizon (deterministic quanta)
	attached int64      // endpoints accepted for this session
	hosted   bool
	runErr   error
	runDone  chan struct{} // closed once the auto_run watcher records the outcome
	stepping bool          // a Step released mu to run the scheduler
	stepDone chan struct{} // closed when the in-flight Step settles

	// flight, set by build, receives lifecycle transitions; failures
	// trip it into a post-mortem. Nil-safe (disabled path).
	flight *flight.Observer

	evictLimit          string
	evictUsed, evictMax int64
}

// Info is a point-in-time, JSON-serializable view of a session.
type Info struct {
	ID        string `json:"id"`
	Workload  string `json:"workload"`
	Seed      int64  `json:"seed"`
	State     State  `json:"state"`
	Rev       uint64 `json:"rev"`
	Attached  int64  `json:"attached"`
	VirtNowNS int64  `json:"virt_now_ns"`
	Steps     int64  `json:"steps"`
	Drives    int64  `json:"drives"`
	Digest    string `json:"drive_digest"`
	DigestU64 uint64 `json:"-"`
	Footprint int64  `json:"footprint_bytes"`
	Error     string `json:"error,omitempty"`
}

// infoLocked snapshots the session. Called with sess.mu held; safe
// while an auto_run scheduler is live because it reads only atomic
// surfaces (PublishedTimes, Stats) and the dmu-guarded digest.
func (s *Session) infoLocked() Info {
	info := Info{
		ID:        s.id,
		Workload:  s.spec.Workload,
		Seed:      s.spec.Seed,
		State:     s.state,
		Rev:       s.rev,
		Attached:  s.attached,
		Footprint: s.wl.Footprint(),
	}
	if s.sub != nil {
		now, _ := s.sub.PublishedTimes()
		info.VirtNowNS = int64(now)
		st := s.sub.Stats()
		info.Steps = st.Steps
		info.Drives = st.Drives
	}
	s.dmu.Lock()
	info.DigestU64 = s.digest.Sum64()
	s.dmu.Unlock()
	info.Digest = fmt.Sprintf("%016x", info.DigestU64)
	if s.runErr != nil {
		info.Error = s.runErr.Error()
	}
	return info
}

// onChannel is the node's accept hook for this session: it records
// the attachment (bumping the revision — attach is a lifecycle
// event) and lets the workload bind its split nets.
func (s *Session) onChannel(ep *channel.Endpoint) {
	s.mu.Lock()
	s.attached++
	s.rev++
	sub := s.sub
	s.mu.Unlock()
	if a, ok := s.wl.(Attacher); ok {
		a.Attach(sub, ep)
	}
}

// startAuto launches the free-running scheduler for auto_run
// sessions and a watcher that records how it ended. Called with
// sess.mu held, from build.
func (s *Session) startAuto() {
	s.state = StateRunning
	s.runDone = make(chan struct{})
	go func() {
		err := s.sub.Run(vtime.Infinity)
		s.mu.Lock()
		if s.state == StateRunning {
			switch {
			case err == nil:
				s.state = StateDone
			case errors.Is(err, core.ErrStopped):
				// Stop is mid-flight; it owns the transition.
			default:
				s.state = StateFailed
				s.runErr = err
				s.flight.Event("session", s.id, "auto_run failed: "+err.Error(), 0)
				s.flight.Trip("session-failed", s.id+": "+err.Error())
			}
			s.rev++
		}
		s.mu.Unlock()
		// Close rather than send: any number of racing Stop callers
		// (client retries, Catalog.Close vs an HTTP DELETE) may wait on
		// runDone, and all of them must wake.
		close(s.runDone)
	}()
}
