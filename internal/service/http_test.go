package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func doReq(t *testing.T, h http.Handler, method, path string, form url.Values) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var req *http.Request
	if form != nil {
		req = httptest.NewRequest(method, path, strings.NewReader(form.Encode()))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var body map[string]any
	// The mux's own 405 responses are plain text; everything the
	// handler writes itself is JSON.
	if rr.Body.Len() > 0 && strings.HasPrefix(rr.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr, body
}

func TestHTTPSessionAPI(t *testing.T) {
	c := NewCatalog(Config{})
	defer c.Close()
	h := Handler(c)

	// Create with form params.
	rr, body := doReq(t, h, "POST", "/sessions", url.Values{"id": {"web-1"}, "seed": {"42"}, "rounds": {"5"}})
	if rr.Code != http.StatusCreated || body["id"] != "web-1" || body["state"] != "ready" {
		t.Fatalf("create: %d %v", rr.Code, body)
	}

	// Create with a JSON body.
	req := httptest.NewRequest("POST", "/sessions", strings.NewReader(`{"id":"web-2","seed":7}`))
	req.Header.Set("Content-Type", "application/json")
	rr2 := httptest.NewRecorder()
	h.ServeHTTP(rr2, req)
	if rr2.Code != http.StatusCreated {
		t.Fatalf("json create: %d %s", rr2.Code, rr2.Body.String())
	}

	// List sees both, sorted.
	rr, body = doReq(t, h, "GET", "/sessions", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("list: %d", rr.Code)
	}
	sessions := body["sessions"].([]any)
	if len(sessions) != 2 {
		t.Fatalf("list: %v", body)
	}

	// Step with an explicit virtual quantum, then to completion.
	rr, body = doReq(t, h, "POST", "/sessions/web-1/step", url.Values{"until": {"20ms"}})
	if rr.Code != http.StatusOK || body["rev"].(float64) != 2 {
		t.Fatalf("step: %d %v", rr.Code, body)
	}
	rr, body = doReq(t, h, "POST", "/sessions/web-1/step", nil)
	if rr.Code != http.StatusOK || body["state"] != "done" {
		t.Fatalf("step to done: %d %v", rr.Code, body)
	}
	digest := body["drive_digest"].(string)
	if digest == "" || digest == "0000000000000000" {
		t.Fatalf("empty digest after run: %v", body)
	}

	// Get reflects the final state.
	rr, body = doReq(t, h, "GET", "/sessions/web-1", nil)
	if rr.Code != http.StatusOK || body["drive_digest"] != digest {
		t.Fatalf("get: %d %v", rr.Code, body)
	}

	// Delete (with CAS) removes it.
	rev := body["rev"].(float64)
	rr, _ = doReq(t, h, "DELETE", "/sessions/web-1?rev=999", nil)
	if rr.Code != http.StatusConflict {
		t.Fatalf("stale delete: %d", rr.Code)
	}
	rr, _ = doReq(t, h, "DELETE", (&url.URL{Path: "/sessions/web-1", RawQuery: url.Values{"rev": {jsonNum(rev)}}.Encode()}).String(), nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: %d", rr.Code)
	}
	rr, _ = doReq(t, h, "GET", "/sessions/web-1", nil)
	if rr.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", rr.Code)
	}
}

// TestAutoRunDefaultEncodingParity: the same logical create request
// must resolve the same auto_run whether it arrives as a JSON body or
// as form/query parameters — the modemsite free-running default lives
// in newWorkload, shared by both decode paths.
func TestAutoRunDefaultEncodingParity(t *testing.T) {
	jsonReq := func(body string) *http.Request {
		r := httptest.NewRequest("POST", "/sessions", strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		return r
	}
	formReq := func(query string) *http.Request {
		return httptest.NewRequest("POST", "/sessions?"+query, nil)
	}
	cases := []struct {
		name string
		req  *http.Request
		want bool
	}{
		{"json modemsite default", jsonReq(`{"workload":"modemsite"}`), true},
		{"form modemsite default", formReq("workload=modemsite"), true},
		{"json modemsite explicit off", jsonReq(`{"workload":"modemsite","auto_run":false}`), false},
		{"form modemsite explicit off", formReq("workload=modemsite&run=false"), false},
		{"json fan default", jsonReq(`{"workload":"fan"}`), false},
		{"form fan explicit on", formReq("workload=fan&run=true"), true},
	}
	for _, tc := range cases {
		spec, err := specFromRequest(tc.req)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if _, err := newWorkload(&spec); err != nil {
			t.Fatalf("%s: newWorkload: %v", tc.name, err)
		}
		if spec.AutoRun == nil || *spec.AutoRun != tc.want {
			t.Fatalf("%s: auto_run resolved to %v, want %v", tc.name, spec.AutoRun, tc.want)
		}
	}
}

func jsonNum(f float64) string {
	b, _ := json.Marshal(uint64(f))
	return string(b)
}

func TestHTTPErrorPaths(t *testing.T) {
	c := NewCatalog(Config{Limits: Limits{MaxSessions: 1}})
	defer c.Close()
	h := Handler(c)

	cases := []struct {
		method, path string
		form         url.Values
		want         int
	}{
		{"PUT", "/sessions", nil, http.StatusMethodNotAllowed},
		{"PATCH", "/sessions/x", nil, http.StatusMethodNotAllowed},
		{"GET", "/sessions/ghost", nil, http.StatusNotFound},
		{"DELETE", "/sessions/ghost", nil, http.StatusNotFound},
		{"POST", "/sessions/ghost/step", nil, http.StatusNotFound},
		{"POST", "/sessions", url.Values{"workload": {"nonesuch"}}, http.StatusBadRequest},
		{"POST", "/sessions", url.Values{"seed": {"not-a-number"}}, http.StatusBadRequest},
		{"POST", "/sessions", url.Values{"fanout": {"many"}}, http.StatusBadRequest},
		{"POST", "/sessions", url.Values{"run": {"maybe"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rr, body := doReq(t, h, tc.method, tc.path, tc.form)
		if rr.Code != tc.want {
			t.Fatalf("%s %s: code %d, want %d (%v)", tc.method, tc.path, rr.Code, tc.want, body)
		}
		if tc.want != http.StatusMethodNotAllowed && body["error"] == "" {
			t.Fatalf("%s %s: no error body", tc.method, tc.path)
		}
	}

	// Fill the catalog: the next create is a budget rejection, 429.
	if rr, _ := doReq(t, h, "POST", "/sessions", url.Values{"id": {"only"}}); rr.Code != http.StatusCreated {
		t.Fatalf("create: %d", rr.Code)
	}
	rr, body := doReq(t, h, "POST", "/sessions", nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over budget: %d %v", rr.Code, body)
	}

	// Duplicate id → 409, bad step params → 400, stale rev → 409.
	if rr, _ := doReq(t, h, "POST", "/sessions", url.Values{"id": {"only"}}); rr.Code != http.StatusConflict {
		t.Fatalf("duplicate: %d", rr.Code)
	}
	if rr, _ := doReq(t, h, "POST", "/sessions/only/step", url.Values{"until": {"yesterday"}}); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad until: %d", rr.Code)
	}
	if rr, _ := doReq(t, h, "POST", "/sessions/only/step", url.Values{"rev": {"-3"}}); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad rev: %d", rr.Code)
	}
	if rr, _ := doReq(t, h, "POST", "/sessions/only/step", url.Values{"rev": {"77"}}); rr.Code != http.StatusConflict {
		t.Fatalf("stale rev: %d", rr.Code)
	}
}
