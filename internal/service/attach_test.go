package service

import (
	"errors"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/vtime"
	"repro/internal/wubbleu"
)

// TestAttachOverSharedListener is the multiplexing proof: two
// modemsite tenants hosted behind ONE node listener, each addressed
// by its session id at the hello handshake, each co-simulating with
// its own designer-side handheld — and a dial naming an unknown or
// stopped session is rejected.
func TestAttachOverSharedListener(t *testing.T) {
	serviceNode := node.New("service-node")
	defer serviceNode.Close()
	addr, err := serviceNode.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalog(Config{Workers: 2, Node: serviceNode})
	defer c.Close()

	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = 4 * 1024
	cfg.Images = 1
	autoRun := true
	spec := Spec{Workload: WorkloadModemSite, AutoRun: &autoRun,
		PageKB: cfg.PageSize / 1024, Images: cfg.Images}

	var infos []Info
	for i := 0; i < 2; i++ {
		info, err := c.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateRunning {
			t.Fatalf("auto_run session state %q, want running", info.State)
		}
		infos = append(infos, info)
	}

	// Dialing a session id nobody created must be refused at the
	// handshake.
	probe := node.New("probe")
	defer probe.Close()
	psub := core.NewSubsystem("probe-sub")
	probe.Host(psub)
	if _, err := probe.Connect("probe-sub", addr, "no-such-session", channel.Conservative, channel.LoopbackLink); err == nil {
		t.Fatal("connect to unknown session succeeded")
	}

	// Each designer runs a full WubbleU page load against its own
	// tenant, concurrently, over the one shared listener.
	type result struct {
		loads int
		err   error
	}
	results := make(chan result, len(infos))
	for _, info := range infos {
		go func(sessID string) {
			dn := node.New("designer-" + sessID)
			defer dn.Close()
			hh := core.NewSubsystem("handheld")
			half, err := wubbleu.InstallHandheld(hh, cfg)
			if err != nil {
				results <- result{err: err}
				return
			}
			dn.Host(hh)
			ep, err := dn.Connect("handheld", addr, sessID, channel.Conservative, channel.LoopbackLink)
			if err != nil {
				results <- result{err: err}
				return
			}
			if err := ep.BindNet(hh.Net("dma"), "dma"); err != nil {
				results <- result{err: err}
				return
			}
			// Generous finite horizon, as the wubbleu CLI uses: the
			// handheld returns once its loads are done and the grant
			// horizon passes.
			if err := hh.Run(vtime.Time(10 * vtime.Second)); err != nil {
				results <- result{err: err}
				return
			}
			results <- result{loads: half.UI.Done}
		}(info.ID)
	}
	for range infos {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.loads == 0 {
			t.Fatal("designer completed no page loads")
		}
	}

	// Attach is a lifecycle event: the revision moved and the
	// attachment was counted.
	got, err := c.Get(infos[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attached == 0 || got.Rev <= infos[0].Rev {
		t.Fatalf("attach not recorded: %+v", got)
	}

	// Stopping a tenant retires its address: new dials are refused,
	// the other tenant is untouched.
	if _, err := c.Stop(infos[0].ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Connect("probe-sub", addr, infos[0].ID, channel.Conservative, channel.LoopbackLink); err == nil {
		t.Fatal("connect to stopped session succeeded")
	}
	if _, err := c.Get(infos[1].ID); err != nil {
		t.Fatalf("surviving tenant: %v", err)
	}
	if _, err := c.Stop(infos[1].ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stop(infos[1].ID, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double stop: %v", err)
	}
}
