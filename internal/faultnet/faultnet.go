// Package faultnet is a deterministic, seeded fault-injecting
// transport for Pia's distributed links. It wraps any byte stream
// that carries 4-byte big-endian length-prefixed frames (both the
// wire package's framing and the resilience package's session
// envelopes follow that convention) and applies per-frame faults on
// the egress path: added latency and jitter, a bandwidth cap, drops,
// duplicates, adjacent reorders, payload corruption, and scripted
// partition/heal cycles.
//
// Every decision is drawn from a PRNG seeded by (Seed, link name), in
// a fixed pattern per frame, so the fault schedule — which fault
// happens to the i-th egress frame — is a pure function of the
// configuration. Chaos runs are therefore exactly reproducible: the
// same seed yields the same schedule byte for byte, which
// Link.VerifyDigest checks at runtime against an independent replay
// of the decision stream (Config.ScheduleDigest).
//
// Faults are injected below the resilience session layer and above
// TCP, which mirrors a WAN: TCP delivers whatever survives in order,
// and anything faultnet eats or mangles looks to the session layer
// exactly like loss or corruption on a long-haul path.
package faultnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/timeline"
)

// maxFrame bounds the frames the segmenter will buffer; anything
// larger than the wire layer's own limit is a protocol error.
const maxFrame = 64<<20 + 64

// ErrLinkCut reports that a scripted partition is currently severing
// the link.
var ErrLinkCut = errors.New("faultnet: link cut by scripted partition")

// Partition is one scripted cut in a link's schedule: when the link
// has forwarded AtFrame egress frames, the connection is severed and
// dial attempts fail until Heal of wall-clock time has passed.
// Triggering on a frame count (not wall time) keeps the cut's
// position in the fault schedule deterministic.
type Partition struct {
	AtFrame int64
	Heal    time.Duration
}

// Config describes the faults injected on one link's egress. The
// zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. The per-link PRNG is
	// seeded with Seed XOR a hash of the link name, so two links of
	// one node draw independent but individually reproducible
	// streams.
	Seed int64

	// Latency is a fixed wall-clock delay added per frame.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) per frame.
	Jitter time.Duration
	// BandwidthBps caps throughput: each frame is charged
	// 8*bytes/BandwidthBps of wall-clock serialization. 0 = no cap.
	BandwidthBps int64

	// Per-frame fault probabilities, each in [0, 1].
	DropProb    float64 // frame silently discarded
	DupProb     float64 // frame sent twice
	ReorderProb float64 // frame held back and swapped with the next
	CorruptProb float64 // one payload byte flipped

	// Partitions is the scripted partition/heal schedule, in
	// ascending AtFrame order.
	Partitions []Partition
}

// Enabled reports whether the config injects or shapes anything.
func (c Config) Enabled() bool {
	return c.Latency > 0 || c.Jitter > 0 || c.BandwidthBps > 0 ||
		c.DropProb > 0 || c.DupProb > 0 || c.ReorderProb > 0 || c.CorruptProb > 0 ||
		len(c.Partitions) > 0
}

// Stats counts what a link did to its traffic.
type Stats struct {
	Frames      int64 // egress frames that entered the schedule
	Forwarded   int64 // frames actually written (dups count twice)
	Dropped     int64
	Duplicated  int64
	Reordered   int64
	Corrupted   int64
	Cuts        int64 // scripted partitions triggered
	BytesShaped int64 // payload bytes that paid latency/bandwidth
	Digest      uint64
}

// action encodes one frame's fate as a bitmask, the unit the schedule
// digest is computed over.
type action uint8

const (
	actDrop action = 1 << iota
	actDup
	actReorder
	actCorrupt
	actCut // partition triggered at this frame index
)

// decider is the deterministic decision stream: the same code path
// drives the live link and the pure ScheduleDigest replay, so the two
// cannot diverge.
type decider struct {
	cfg     Config
	rng     *rand.Rand
	frames  int64
	partIdx int
	digest  uint64
}

func newDecider(cfg Config, linkName string) *decider {
	h := fnv.New64a()
	h.Write([]byte(linkName))
	return &decider{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64()))),
		digest: fnv64Offset,
	}
}

const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func (d *decider) mix(b byte) {
	d.digest ^= uint64(b)
	d.digest *= fnv64Prime
}

// next consumes one frame's worth of decisions. The draw pattern is
// fixed — five floats per frame regardless of which probabilities are
// zero — so the stream position depends only on the frame index.
// corruptMask is the XOR applied to a payload byte when actCorrupt is
// set, jitterFrac the fraction of Jitter charged.
func (d *decider) next() (act action, corruptMask byte, jitterFrac float64) {
	idx := d.frames
	d.frames++
	if d.partIdx < len(d.cfg.Partitions) && idx >= d.cfg.Partitions[d.partIdx].AtFrame {
		d.partIdx++
		act |= actCut
	}
	if d.rng.Float64() < d.cfg.DropProb {
		act |= actDrop
	}
	if d.rng.Float64() < d.cfg.DupProb {
		act |= actDup
	}
	if d.rng.Float64() < d.cfg.ReorderProb {
		act |= actReorder
	}
	if d.rng.Float64() < d.cfg.CorruptProb {
		act |= actCorrupt
	}
	corruptMask = byte(d.rng.Float64()*254) + 1 // never 0: a flip always flips
	jitterFrac = d.rng.Float64()
	// Digest the frame index and its fate.
	for i := 0; i < 8; i++ {
		d.mix(byte(idx >> (8 * i)))
	}
	d.mix(byte(act))
	if act&actCorrupt != 0 {
		d.mix(corruptMask)
	}
	return act, corruptMask, jitterFrac
}

// ScheduleDigest replays the first n frames' decision stream and
// returns its digest — a pure function of (Config, linkName). A live
// link that has consumed n frames must report exactly this digest;
// see Link.VerifyDigest.
func (c Config) ScheduleDigest(linkName string, n int64) uint64 {
	d := newDecider(c, linkName)
	for i := int64(0); i < n; i++ {
		d.next()
	}
	return d.digest
}

// Link is the shared fault state of one logical link. It persists
// across connection epochs — reconnects continue the same decision
// stream and the same partition schedule — and hands out Conn
// wrappers for the raw connections that carry the link's traffic.
type Link struct {
	name string
	cfg  Config

	mu       sync.Mutex
	dec      *decider
	stats    Stats
	cutUntil time.Time

	// now is the clock partition-heal windows are measured against.
	// It defaults to time.Now; tests inject a manual clock with
	// SetClock so that WHEN a cut heals no longer depends on host
	// speed. Which frames trigger cuts is decided by the seeded
	// schedule either way and stays in the schedule digest.
	now func() time.Time

	// Tracer, when set, receives one line per injected fault.
	Tracer func(string)

	// tl, when set via SetTimeline, receives one structured timeline
	// event per injected fault. Fault events are transient: frame
	// indices depend on wall-clock batching, so they never enter the
	// canonical merged export.
	tl *timeline.Recorder
}

// SetTimeline attaches a timeline recorder; each injected fault is
// recorded as a structured event alongside the Tracer line.
func (l *Link) SetTimeline(rec *timeline.Recorder) {
	l.mu.Lock()
	l.tl = rec
	l.mu.Unlock()
}

// NewLink creates the fault state for one named link. The name goes
// into the seed derivation, so give distinct links distinct names.
func NewLink(name string, cfg Config) *Link {
	return &Link{name: name, cfg: cfg, dec: newDecider(cfg, name), now: time.Now}
}

// SetClock replaces the wall clock the link uses to time partition
// heals. Injecting a manual clock makes cut/heal observations fully
// deterministic: a link stays Broken until the injected clock is
// advanced past the heal window, no matter how fast or slow the host
// executes. Call before traffic flows; a nil clock restores time.Now.
func (l *Link) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Config returns the link's fault configuration.
func (l *Link) Config() Config { return l.cfg }

// Stats returns a snapshot of the link's counters and running
// schedule digest.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Frames = l.dec.frames
	st.Digest = l.dec.digest
	return st
}

// VerifyDigest recomputes the schedule for the frames consumed so far
// and compares it with the live digest; a mismatch would mean the
// link deviated from its seeded schedule.
func (l *Link) VerifyDigest() error {
	st := l.Stats()
	want := l.cfg.ScheduleDigest(l.name, st.Frames)
	if st.Digest != want {
		return fmt.Errorf("faultnet %s: schedule digest mismatch after %d frames: live %x, replay %x",
			l.name, st.Frames, st.Digest, want)
	}
	return nil
}

// Broken reports whether a scripted partition currently severs the
// link.
func (l *Link) Broken() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now().Before(l.cutUntil)
}

func (l *Link) trace(format string, args ...any) {
	if l.Tracer != nil {
		l.Tracer(fmt.Sprintf(format, args...))
	}
}

// Dial connects to addr and wraps the connection; it fails while a
// scripted partition is active, which is what forces reconnect
// backoff to ride out the cut.
func (l *Link) Dial(network, addr string) (io.ReadWriteCloser, error) {
	if l.Broken() {
		return nil, fmt.Errorf("faultnet %s: dial %s: %w", l.name, addr, ErrLinkCut)
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	if t, ok := c.(*net.TCPConn); ok {
		t.SetNoDelay(true)
	}
	return l.Wrap(c), nil
}

// Wrap returns a connection whose writes pass through the link's
// fault schedule. Reads pass through untouched — each side of a
// channel shapes its own egress.
func (l *Link) Wrap(inner io.ReadWriteCloser) io.ReadWriteCloser {
	return &Conn{link: l, inner: inner}
}

// heldFlushDelay bounds how long a reorder can hold a frame with no
// successor to swap with. Without it a held frame could park forever —
// a handshake hello, for instance, has nothing following it until the
// peer answers, which it never will. After the delay the hold degrades
// to plain extra latency.
const heldFlushDelay = 2 * time.Millisecond

// Conn is one connection epoch on a faulty link. Writes are segmented
// into length-prefixed frames and individually subjected to the
// link's schedule; a partial trailing frame is buffered until its
// remainder arrives. A frame held back for reorder belongs to the
// epoch that wrote it: it dies with the connection rather than
// leaking into a successor epoch.
type Conn struct {
	link  *Link
	inner io.ReadWriteCloser

	wmu     sync.Mutex
	pending []byte

	// hmu guards the reorder hold. It is its own lock — never taken
	// across a sleep or an inner write — so Close stays non-blocking
	// even while a shaped write is in flight.
	hmu    sync.Mutex
	held   []byte
	htimer *time.Timer
	closed bool
}

// Read passes through to the underlying connection.
func (c *Conn) Read(p []byte) (int, error) { return c.inner.Read(p) }

// Close drops any held frame (it is lost with the epoch; the session
// layer replays it) and closes the underlying connection.
func (c *Conn) Close() error {
	c.dropHeld(true)
	return c.inner.Close()
}

// dropHeld discards the held frame and stops its flush timer. With
// closing set the conn also refuses future holds.
func (c *Conn) dropHeld(closing bool) {
	c.hmu.Lock()
	c.held = nil
	if c.htimer != nil {
		c.htimer.Stop()
		c.htimer = nil
	}
	if closing {
		c.closed = true
	}
	c.hmu.Unlock()
}

// takeHeld removes and returns the held frame, if any.
func (c *Conn) takeHeld() []byte {
	c.hmu.Lock()
	f := c.held
	c.held = nil
	if c.htimer != nil {
		c.htimer.Stop()
		c.htimer = nil
	}
	c.hmu.Unlock()
	return f
}

// flushHeld is the timer path: no successor frame showed up in time,
// so the held frame departs on its own.
func (c *Conn) flushHeld() {
	f := c.takeHeld()
	if f == nil {
		return
	}
	l := c.link
	l.mu.Lock()
	l.stats.Forwarded++
	l.stats.BytesShaped += int64(len(f))
	l.mu.Unlock()
	l.trace("faultnet %s: held frame flushed after %v (no successor)", l.name, heldFlushDelay)
	// A write error here means the epoch died while the frame was
	// held; it is lost like any in-flight frame.
	c.inner.Write(f)
}

// SetReadDeadline forwards to the underlying connection when it
// supports deadlines (handshake timeouts need this).
func (c *Conn) SetReadDeadline(t time.Time) error {
	if d, ok := c.inner.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// Write segments p into frames and runs each through the schedule.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pending = append(c.pending, p...)
	for {
		if len(c.pending) < 4 {
			return len(p), nil
		}
		n := binary.BigEndian.Uint32(c.pending[:4])
		if n > maxFrame {
			return 0, fmt.Errorf("faultnet %s: frame of %d bytes exceeds limit", c.link.name, n)
		}
		total := 4 + int(n)
		if len(c.pending) < total {
			return len(p), nil
		}
		frame := make([]byte, total)
		copy(frame, c.pending[:total])
		c.pending = c.pending[total:]
		if err := c.processFrame(frame); err != nil {
			return 0, err
		}
	}
}

// processFrame applies the link schedule to one complete frame.
func (c *Conn) processFrame(frame []byte) error {
	l := c.link
	l.mu.Lock()
	if l.now().Before(l.cutUntil) {
		// Mid-cut writes are not part of the schedule: the epoch is
		// already dead, the writer just has not noticed yet.
		l.mu.Unlock()
		c.Close()
		return ErrLinkCut
	}
	idx := l.dec.frames
	act, mask, jfrac := l.dec.next()
	tl := l.tl
	if act&actCut != 0 {
		heal := l.cfg.Partitions[l.dec.partIdx-1].Heal
		l.cutUntil = l.now().Add(heal)
		l.stats.Cuts++
		l.mu.Unlock()
		l.trace("faultnet %s: frame %d: cut link for %v", l.name, idx, heal)
		tl.Fault(l.name, "cut", int64(idx))
		// A frame held across the cut is lost with the epoch.
		c.Close()
		return ErrLinkCut
	}
	if act&actDrop != 0 {
		l.stats.Dropped++
		l.mu.Unlock()
		l.trace("faultnet %s: frame %d: dropped (%d bytes)", l.name, idx, len(frame))
		tl.Fault(l.name, "drop", int64(idx))
		return nil
	}
	if act&actCorrupt != 0 && len(frame) > 4 {
		// Flip one byte past the length prefix so the receiver can
		// still parse the framing and detect the damage by checksum.
		off := 4 + int(mask)%(len(frame)-4)
		frame[off] ^= mask
		l.stats.Corrupted++
		l.trace("faultnet %s: frame %d: corrupted byte %d", l.name, idx, off)
		tl.Fault(l.name, "corrupt", int64(idx))
	}
	var emit [][]byte
	if act&actReorder != 0 {
		c.hmu.Lock()
		if c.held == nil && !c.closed {
			// Hold this frame back; it departs after the next one, or
			// after heldFlushDelay if no successor arrives.
			c.held = frame
			c.htimer = time.AfterFunc(heldFlushDelay, c.flushHeld)
			c.hmu.Unlock()
			l.stats.Reordered++
			l.mu.Unlock()
			l.trace("faultnet %s: frame %d: held for reorder", l.name, idx)
			tl.Fault(l.name, "reorder", int64(idx))
			return nil
		}
		c.hmu.Unlock()
	}
	emit = append(emit, frame)
	if act&actDup != 0 {
		l.stats.Duplicated++
		emit = append(emit, frame)
		l.trace("faultnet %s: frame %d: duplicated", l.name, idx)
		tl.Fault(l.name, "dup", int64(idx))
	}
	if held := c.takeHeld(); held != nil {
		emit = append(emit, held)
	}
	var delay time.Duration
	bytes := 0
	for _, f := range emit {
		bytes += len(f)
	}
	delay = l.cfg.Latency + time.Duration(jfrac*float64(l.cfg.Jitter))
	if l.cfg.BandwidthBps > 0 {
		delay += time.Duration(int64(bytes) * 8 * int64(time.Second) / l.cfg.BandwidthBps)
	}
	l.stats.Forwarded += int64(len(emit))
	l.stats.BytesShaped += int64(bytes)
	l.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	for _, f := range emit {
		if _, err := c.inner.Write(f); err != nil {
			return err
		}
	}
	return nil
}

// ParsePartitions parses a partition script of the form
// "atframe:healms[,atframe:healms...]", e.g. "300:50,2000:100" — cut
// after 300 frames and heal 50 ms later, again after frame 2000 for
// 100 ms.
func ParsePartitions(s string) ([]Partition, error) {
	if s == "" {
		return nil, nil
	}
	var out []Partition
	for _, part := range splitComma(s) {
		var at, healMS int64
		if _, err := fmt.Sscanf(part, "%d:%d", &at, &healMS); err != nil {
			return nil, fmt.Errorf("faultnet: bad partition %q (want atframe:healms): %v", part, err)
		}
		if at < 0 || healMS < 0 {
			return nil, fmt.Errorf("faultnet: negative partition %q", part)
		}
		if len(out) > 0 && at <= out[len(out)-1].AtFrame {
			return nil, fmt.Errorf("faultnet: partition frames must ascend, got %q", s)
		}
		out = append(out, Partition{AtFrame: at, Heal: time.Duration(healMS) * time.Millisecond})
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
