package faultnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"
	"testing"
	"time"
)

// frame builds a length-prefixed frame with the given body.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out[:4], uint32(len(body)))
	copy(out[4:], body)
	return out
}

// sink collects everything written to it.
type sink struct {
	buf    bytes.Buffer
	closed bool
}

func (s *sink) Write(p []byte) (int, error) { return s.buf.Write(p) }
func (s *sink) Read(p []byte) (int, error)  { return 0, io.EOF }
func (s *sink) Close() error                { s.closed = true; return nil }

// readFrames splits a byte stream back into frame bodies.
func readFrames(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	var out [][]byte
	for len(raw) > 0 {
		if len(raw) < 4 {
			t.Fatalf("trailing partial header: % x", raw)
		}
		n := binary.BigEndian.Uint32(raw[:4])
		if len(raw) < 4+int(n) {
			t.Fatalf("trailing partial frame")
		}
		out = append(out, raw[4:4+int(n)])
		raw = raw[4+int(n):]
	}
	return out
}

func TestPassThroughWhenCalm(t *testing.T) {
	s := &sink{}
	l := NewLink("calm", Config{Seed: 1})
	c := l.Wrap(s)
	for i := 0; i < 5; i++ {
		if _, err := c.Write(frame([]byte{byte(i), 0xAA})); err != nil {
			t.Fatal(err)
		}
	}
	got := readFrames(t, s.buf.Bytes())
	if len(got) != 5 {
		t.Fatalf("forwarded %d frames, want 5", len(got))
	}
	for i, f := range got {
		if f[0] != byte(i) {
			t.Fatalf("frame %d reordered: %v", i, got)
		}
	}
	if st := l.Stats(); st.Frames != 5 || st.Forwarded != 5 || st.Dropped+st.Duplicated+st.Corrupted+st.Reordered != 0 {
		t.Fatalf("calm link stats: %+v", st)
	}
	if err := l.VerifyDigest(); err != nil {
		t.Fatal(err)
	}
}

// TestPartialWritesReassemble: frames split across many Write calls
// (header and payload separately, and mid-payload) still come out as
// whole frames.
func TestPartialWritesReassemble(t *testing.T) {
	s := &sink{}
	l := NewLink("partial", Config{})
	c := l.Wrap(s)
	f := frame(bytes.Repeat([]byte{0x5C}, 100))
	for i := 0; i < len(f); i += 7 {
		end := i + 7
		if end > len(f) {
			end = len(f)
		}
		if _, err := c.Write(f[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	got := readFrames(t, s.buf.Bytes())
	if len(got) != 1 || len(got[0]) != 100 {
		t.Fatalf("reassembly broken: %d frames", len(got))
	}
}

// TestDeterministicSchedule: two links with the same seed and name
// apply byte-for-byte the same faults to the same traffic, and their
// digests match the pure schedule replay.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.2, DupProb: 0.1, ReorderProb: 0.1, CorruptProb: 0.1}
	run := func() ([]byte, Stats) {
		s := &sink{}
		l := NewLink("det", cfg)
		c := l.Wrap(s)
		for i := 0; i < 200; i++ {
			if _, err := c.Write(frame([]byte{byte(i), byte(i >> 8), 0x77, 0x99})); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.VerifyDigest(); err != nil {
			t.Fatal(err)
		}
		return s.buf.Bytes(), l.Stats()
	}
	b1, st1 := run()
	b2, st2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different byte streams")
	}
	if st1 != st2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", st1, st2)
	}
	if st1.Dropped == 0 || st1.Duplicated == 0 || st1.Corrupted == 0 || st1.Reordered == 0 {
		t.Fatalf("schedule too tame for the probabilities: %+v", st1)
	}
	if st1.Digest != cfg.ScheduleDigest("det", st1.Frames) {
		t.Fatal("live digest does not match schedule replay")
	}
	// A different seed must yield a different schedule.
	other := cfg
	other.Seed = 43
	if other.ScheduleDigest("det", 200) == cfg.ScheduleDigest("det", 200) {
		t.Fatal("different seeds produced identical schedules")
	}
	// And a different link name, too.
	if cfg.ScheduleDigest("other-link", 200) == cfg.ScheduleDigest("det", 200) {
		t.Fatal("different link names produced identical schedules")
	}
}

func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	s := &sink{}
	l := NewLink("corrupt", Config{Seed: 7, CorruptProb: 1.0})
	c := l.Wrap(s)
	body := bytes.Repeat([]byte{0}, 32)
	if _, err := c.Write(frame(body)); err != nil {
		t.Fatal(err)
	}
	got := readFrames(t, s.buf.Bytes())
	if len(got) != 1 {
		t.Fatalf("forwarded %d frames", len(got))
	}
	diff := 0
	for _, b := range got[0] {
		if b != 0 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
}

func TestScriptedPartition(t *testing.T) {
	s := &sink{}
	l := NewLink("part", Config{Partitions: []Partition{{AtFrame: 3, Heal: 40 * time.Millisecond}}})
	c := l.Wrap(s)
	for i := 0; i < 3; i++ {
		if _, err := c.Write(frame([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if l.Broken() {
		t.Fatal("link broken before the scripted frame")
	}
	_, err := c.Write(frame([]byte{3}))
	if !errors.Is(err, ErrLinkCut) {
		t.Fatalf("frame 3 should cut the link, got %v", err)
	}
	if !s.closed {
		t.Fatal("cut did not close the inner connection")
	}
	if !l.Broken() {
		t.Fatal("link not broken after cut")
	}
	if _, err := l.Dial("tcp", "127.0.0.1:1"); !errors.Is(err, ErrLinkCut) {
		t.Fatalf("dial during partition: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	if l.Broken() {
		t.Fatal("link did not heal")
	}
	if st := l.Stats(); st.Cuts != 1 {
		t.Fatalf("cuts = %d, want 1", st.Cuts)
	}
	if err := l.VerifyDigest(); err != nil {
		t.Fatal(err)
	}
}

// fakeClock is a manually advanced clock for SetClock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestPartitionHealDeterministicUnderSlowClock replays the same
// scripted cut/heal sequence twice — once at full speed and once on
// an artificially slow host (real sleeps longer than the heal
// windows injected between every operation). With the link clock
// injected, both replays must observe the identical cut/heal decision
// sequence, the identical stats, and the identical schedule digest;
// before the clock was injectable, the slow run would have seen the
// 5ms heal windows expire behind its back.
func TestPartitionHealDeterministicUnderSlowClock(t *testing.T) {
	cfg := Config{Partitions: []Partition{
		{AtFrame: 3, Heal: 5 * time.Millisecond},
		{AtFrame: 8, Heal: 5 * time.Millisecond},
	}}
	replay := func(slow bool) ([]string, Stats) {
		var dally func()
		if slow {
			dally = func() { time.Sleep(8 * time.Millisecond) } // longer than any heal
		} else {
			dally = func() {}
		}
		clock := &fakeClock{t: time.Unix(1_000_000, 0)}
		s := &sink{}
		l := NewLink("slowclock", cfg)
		l.SetClock(clock.Now)
		c := l.Wrap(s)
		var log []string
		for i := 0; i < 12; i++ {
			dally()
			_, err := c.Write(frame([]byte{byte(i)}))
			switch {
			case errors.Is(err, ErrLinkCut):
				log = append(log, fmt.Sprintf("cut@%d", i))
				dally()
				log = append(log, fmt.Sprintf("broken=%v", l.Broken()))
				// A write attempted mid-cut dies without entering the
				// schedule: the epoch is already gone.
				c = l.Wrap(s)
				if _, err := c.Write(frame([]byte{0xFF})); !errors.Is(err, ErrLinkCut) {
					t.Fatalf("mid-cut write: got %v, want ErrLinkCut", err)
				}
				log = append(log, "midcut-rejected")
				clock.Advance(6 * time.Millisecond) // past the heal window
				log = append(log, fmt.Sprintf("healed=%v", !l.Broken()))
				c = l.Wrap(s)
			case err != nil:
				t.Fatal(err)
			default:
				log = append(log, fmt.Sprintf("fwd@%d", i))
			}
		}
		if err := l.VerifyDigest(); err != nil {
			t.Fatal(err)
		}
		return log, l.Stats()
	}
	fastLog, fastStats := replay(false)
	slowLog, slowStats := replay(true)
	if !slices.Equal(fastLog, slowLog) {
		t.Fatalf("cut/heal sequence depends on host speed:\nfast: %v\nslow: %v", fastLog, slowLog)
	}
	if fastStats != slowStats {
		t.Fatalf("stats depend on host speed:\nfast: %+v\nslow: %+v", fastStats, slowStats)
	}
	if fastStats.Cuts != 2 {
		t.Fatalf("cuts = %d, want 2", fastStats.Cuts)
	}
	want := []string{
		"fwd@0", "fwd@1", "fwd@2",
		"cut@3", "broken=true", "midcut-rejected", "healed=true",
		"fwd@4", "fwd@5", "fwd@6", "fwd@7",
		"cut@8", "broken=true", "midcut-rejected", "healed=true",
		"fwd@9", "fwd@10", "fwd@11",
	}
	if !slices.Equal(fastLog, want) {
		t.Fatalf("decision log:\ngot:  %v\nwant: %v", fastLog, want)
	}
}

func TestParsePartitions(t *testing.T) {
	ps, err := ParsePartitions("300:50,2000:100")
	if err != nil {
		t.Fatal(err)
	}
	want := []Partition{{300, 50 * time.Millisecond}, {2000, 100 * time.Millisecond}}
	if len(ps) != 2 || ps[0] != want[0] || ps[1] != want[1] {
		t.Fatalf("parsed %+v", ps)
	}
	if ps, err := ParsePartitions(""); err != nil || ps != nil {
		t.Fatalf("empty script: %v %v", ps, err)
	}
	for _, bad := range []string{"x", "5", "5:-1", "10:5,3:5"} {
		if _, err := ParsePartitions(bad); err == nil {
			t.Fatalf("accepted bad script %q", bad)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if !(Config{DropProb: 0.1}).Enabled() || !(Config{Latency: time.Millisecond}).Enabled() ||
		!(Config{Partitions: []Partition{{1, 0}}}).Enabled() {
		t.Fatal("non-zero config not enabled")
	}
}
