// Package metrics is Pia's unified observability substrate: a small
// registry of counters, gauges, and histograms that every layer's
// Stats surface feeds into, with JSON and Prometheus-style text
// exposition.
//
// The design constraint that shapes everything here is the disabled
// path: simulations that never ask for metrics must pay nothing. Two
// mechanisms provide that:
//
//   - Instruments are nil-safe. A (*Counter)(nil).Add(1) is a single
//     predictable branch and no memory traffic, so hot paths can keep
//     an instrument field that is simply nil when metrics are off.
//
//   - Most of the wiring is pull-based. Layers that already maintain
//     a race-safe Stats() accessor (endpoints, wire conns, fault
//     links, sessions) are read by Collector closures only when a
//     snapshot is taken, so their hot paths are untouched entirely.
//
// Push-style instruments (the scheduler's per-round lag and runnable
// gauges) exist for values that are only coherent when sampled on the
// owning goroutine at a specific point in the loop.
//
// Metric names follow the Prometheus convention: a base name plus
// optional labels rendered into the name string at registration time,
// e.g. `pia_chan_asks_out{sub="handheld",peer="modemsite"}`. Labels
// are static for the life of an instrument, so rendering them once at
// setup keeps the hot path free of string work.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Instrument kinds as they appear in Sample.Kind and in Prometheus
// `# TYPE` lines.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotonically increasing value. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored so a
// counter can never run backwards).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready
// to use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative buckets. Bounds
// are inclusive upper edges in ascending order; an implicit +Inf
// bucket is always present. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64        // ascending upper edges
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and the bounds
	// slice is immutable after construction.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Bucket is one cumulative histogram bucket in a Sample. LE is the
// inclusive upper edge; the +Inf bucket is omitted (its count equals
// the sample's Value).
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Sample is one metric value at snapshot time.
type Sample struct {
	// Name is the full rendered name including any labels, e.g.
	// `pia_wire_bytes_out{node="n1"}`.
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Value is the counter/gauge value; for histograms it is the
	// total observation count.
	Value int64 `json:"value"`
	// Sum is the sum of observations (histograms only).
	Sum int64 `json:"sum,omitempty"`
	// Buckets are cumulative bucket counts (histograms only).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Collector is a pull hook: called at snapshot time to emit samples
// computed from some live object (an endpoint list, a node's wire
// conns). Collectors must be safe to call from any goroutine.
type Collector func(emit func(Sample))

type instrument struct {
	name string
	kind string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds live instruments and pull collectors. A nil
// *Registry is inert: instrument constructors return nil (no-op)
// instruments and Snapshot returns nil, which is what gives the whole
// stack its zero-overhead disabled path.
type Registry struct {
	mu         sync.Mutex
	insts      []instrument
	byName     map[string]int    // index into insts
	help       map[string]string // base name -> # HELP text
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int), help: make(map[string]string)}
}

// SetHelp registers the `# HELP` text emitted for a base metric name
// (the name without its label clause) by WritePrometheus. First
// registration wins; a nil registry or empty text is a no-op.
func (r *Registry) SetHelp(base, text string) {
	if r == nil || base == "" || text == "" {
		return
	}
	r.mu.Lock()
	if _, dup := r.help[base]; !dup {
		r.help[base] = text
	}
	r.mu.Unlock()
}

// helpOf returns the registered help text for a base name ("" if
// none).
func (r *Registry) helpOf(base string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[base]
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil (a no-op counter) on a nil registry or if the
// name is already taken by a different kind.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.insts[i].c // nil if kind mismatch
	}
	c := &Counter{}
	r.byName[name] = len(r.insts)
	r.insts = append(r.insts, instrument{name: name, kind: KindCounter, c: c})
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed. Returns nil on a nil registry or on a kind clash.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.insts[i].g
	}
	g := &Gauge{}
	r.byName[name] = len(r.insts)
	r.insts = append(r.insts, instrument{name: name, kind: KindGauge, g: g})
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds (ascending inclusive upper edges) if
// needed. Returns nil on a nil registry or on a kind clash.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		return r.insts[i].h
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	r.byName[name] = len(r.insts)
	r.insts = append(r.insts, instrument{name: name, kind: KindHistogram, h: h})
	return h
}

// AddCollector registers a pull hook evaluated at every Snapshot.
// No-op on a nil registry.
func (r *Registry) AddCollector(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Snapshot returns the current value of every instrument plus
// everything the collectors emit, sorted by name. Duplicate names
// (e.g. a collector wired twice) keep their first occurrence. Safe to
// call concurrently with instrument updates and live traffic.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	insts := make([]instrument, len(r.insts))
	copy(insts, r.insts)
	colls := make([]Collector, len(r.collectors))
	copy(colls, r.collectors)
	r.mu.Unlock()

	var out []Sample
	for _, in := range insts {
		s := Sample{Name: in.name, Kind: in.kind}
		switch in.kind {
		case KindCounter:
			s.Value = in.c.Value()
		case KindGauge:
			s.Value = in.g.Value()
		case KindHistogram:
			h := in.h
			var cum int64
			for i := range h.bounds {
				cum += h.counts[i].Load()
				s.Buckets = append(s.Buckets, Bucket{LE: h.bounds[i], Count: cum})
			}
			s.Value = h.n.Load()
			s.Sum = h.sum.Load()
		}
		out = append(out, s)
	}
	for _, c := range colls {
		c(func(s Sample) { out = append(out, s) })
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	// Drop duplicates after the stable sort so first registration
	// wins deterministically.
	dedup := out[:0]
	for i, s := range out {
		if i > 0 && out[i-1].Name == s.Name {
			continue
		}
		dedup = append(dedup, s)
	}
	return dedup
}

// KV is one (metric name, value) pair for EmitCounters.
type KV struct {
	Name  string
	Value int64
}

// EmitCounters emits one counter sample per pair, each labelled with
// the same alternating key/value labels — the common shape of a pull
// collector walking a Stats struct. Shared by the node wire/timeline
// collectors so new observability surfaces don't re-roll the loop.
func EmitCounters(emit func(Sample), labels []string, pairs ...KV) {
	for _, p := range pairs {
		emit(Sample{
			Name:  Label(p.Name, labels...),
			Kind:  KindCounter,
			Value: p.Value,
		})
	}
}

// Label renders a base name plus alternating key/value label pairs
// into the canonical `name{k="v",...}` form used throughout Pia.
// Called once at registration time so hot paths never build strings.
// Label values are escaped per the Prometheus exposition format
// (backslash, double quote, newline), so a hostile session or
// component name cannot corrupt the scrape.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	b := make([]byte, 0, len(name)+16*len(kv))
	b = append(b, name...)
	b = append(b, '{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=', '"')
		b = appendEscaped(b, kv[i+1])
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}

// appendEscaped appends a label value with the exposition-format
// escapes: `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
func appendEscaped(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return b
}
