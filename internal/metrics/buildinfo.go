package metrics

import (
	"runtime"
	"runtime/debug"
)

// buildVersion resolves the binary's module version (or VCS revision)
// once at init: flight dumps and scrapes both stamp it, and
// debug.ReadBuildInfo walks the whole build graph, so resolving per
// registration would be wasteful.
var buildVersion = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	if v == "" || v == "(devel)" {
		return "devel"
	}
	return v
}()

// BuildVersion returns the module version or VCS revision baked into
// the running binary ("devel" for an unstamped local build).
func BuildVersion() string { return buildVersion }

// RegisterBuildInfo registers the standard `pia_build_info` gauge: a
// constant 1 whose labels identify the binary (module version or VCS
// revision, Go toolchain) and the mode the registry serves
// ("modemsite", "service", "mesh", "session", ...). Every scrape and
// flight dump produced by the registry then says which build made it.
// Safe on a nil registry; re-registration under the same labels is
// the usual get-or-create.
func RegisterBuildInfo(r *Registry, mode string) {
	if r == nil {
		return
	}
	r.SetHelp("pia_build_info", "Build identity of the binary serving this registry; value is always 1.")
	r.Gauge(Label("pia_build_info",
		"version", buildVersion,
		"go", runtime.Version(),
		"mode", mode,
	)).Set(1)
}
