package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteJSON writes the snapshot as a single JSON object:
//
//	{"metrics":[{"name":...,"kind":...,"value":...},...]}
//
// The sample list is sorted by name, so output is deterministic for a
// given registry state.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.Snapshot()
	if samples == nil {
		samples = []Sample{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Metrics []Sample `json:"metrics"`
	}{samples})
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format (text/plain; version 0.0.4): a `# HELP` line
// (when registered via SetHelp) and one `# TYPE` line per base
// metric name followed by its sample lines. Histograms expand to
// `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	for _, s := range r.Snapshot() {
		base, labels := splitName(s.Name)
		if !typed[base] {
			typed[base] = true
			if help := r.helpOf(base); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, s.Kind); err != nil {
				return err
			}
		}
		var err error
		switch s.Kind {
		case KindHistogram:
			var cum int64
			for _, b := range s.Buckets {
				cum = b.Count
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabel(labels, "le", fmt.Sprint(b.LE)), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabel(labels, "le", "+Inf"), s.Value); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %d\n", base, labels, s.Sum); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", base, labels, s.Value)
		default:
			_, err = fmt.Fprintf(w, "%s %d\n", s.Name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// splitName separates `base{labels}` into base and `{labels}` (empty
// string when unlabelled).
func splitName(full string) (base, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], full[i:]
	}
	return full, ""
}

// AddLabel renders one more label pair into an already-rendered
// metric name, creating the `{...}` clause if absent. Aggregators use
// it to re-emit a child registry's samples under an extra identity
// label (e.g. session="id") without re-deriving the original name.
func AddLabel(full, k, v string) string {
	base, labels := splitName(full)
	return base + withLabel(labels, k, v)
}

// withLabel appends one more label to an existing `{...}` clause (or
// starts one), escaping the value per the exposition format.
func withLabel(labels, k, v string) string {
	pair := k + `="` + string(appendEscaped(nil, v)) + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// ReportLine renders a compact single-line run report from a
// snapshot: `pia-report t=<stamp> name=value name=value ...`. Only
// counters and gauges appear; histogram detail stays in /metrics.
// Used by the CLIs' -report tickers so operators can tail one line
// per interval without a scrape pipeline.
func ReportLine(stamp time.Time, samples []Sample) string {
	var b strings.Builder
	b.Grow(64 + 24*len(samples))
	b.WriteString("pia-report t=")
	b.WriteString(stamp.UTC().Format("15:04:05.000"))
	for _, s := range samples {
		if s.Kind == KindHistogram {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(s.Name)
		b.WriteByte('=')
		fmt.Fprintf(&b, "%d", s.Value)
	}
	return b.String()
}
