package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	// All no-ops; must not panic.
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(-3)
	h.Observe(1)
	r.AddCollector(func(emit func(Sample)) { emit(Sample{Name: "nope"}) })
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pia_test_count")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("pia_test_count"); again != c {
		t.Fatal("get-or-create must return the same counter")
	}

	g := r.Gauge("pia_test_gauge")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}

	h := r.Histogram("pia_test_hist", []int64{10, 100})
	for _, v := range []int64{1, 5, 50, 500} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	hs := byName["pia_test_hist"]
	if hs.Value != 4 || hs.Sum != 556 {
		t.Fatalf("hist count/sum = %d/%d, want 4/556", hs.Value, hs.Sum)
	}
	want := []Bucket{{LE: 10, Count: 2}, {LE: 100, Count: 3}}
	if len(hs.Buckets) != 2 || hs.Buckets[0] != want[0] || hs.Buckets[1] != want[1] {
		t.Fatalf("hist buckets = %+v, want %+v", hs.Buckets, want)
	}
}

func TestKindClashReturnsNil(t *testing.T) {
	r := NewRegistry()
	r.Counter("same")
	if g := r.Gauge("same"); g != nil {
		t.Fatal("gauge under a counter name must be nil")
	}
	// And the nil result must still be safe to use.
	r.Gauge("same").Set(1)
}

func TestCollectorAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_live").Add(2)
	r.AddCollector(func(emit func(Sample)) {
		emit(Sample{Name: "a_pulled", Kind: KindGauge, Value: 9})
		emit(Sample{Name: "c_pulled", Kind: KindCounter, Value: 1})
	})
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "a_pulled,b_live,c_pulled" {
		t.Fatalf("snapshot order = %v", names)
	}
}

func TestSnapshotDedup(t *testing.T) {
	r := NewRegistry()
	r.Gauge("dup").Set(1)
	r.AddCollector(func(emit func(Sample)) {
		emit(Sample{Name: "dup", Kind: KindGauge, Value: 99})
	})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 1 {
		t.Fatalf("dedup failed: %+v (live instrument must win)", snap)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("pia_x"); got != "pia_x" {
		t.Fatal(got)
	}
	got := Label("pia_x", "sub", "handheld", "peer", "modem")
	if got != `pia_x{sub="handheld",peer="modem"}` {
		t.Fatal(got)
	}
}

func TestLabelEscaping(t *testing.T) {
	// A `"` or `\` (or newline) in a label value must not corrupt the
	// rendered name: per the Prometheus exposition format they escape
	// to \" , \\ and \n.
	got := Label("pia_x", "session", `s-"1"\x`+"\n")
	want := `pia_x{session="s-\"1\"\\x\n"}`
	if got != want {
		t.Fatalf("Label escaping: got %s, want %s", got, want)
	}
	// The post-hoc label path (AddLabel -> withLabel) must escape the
	// same way — it is what the multi-tenant aggregation uses on raw
	// session ids.
	if got := AddLabel("pia_y", "session", `a"b`); got != `pia_y{session="a\"b"}` {
		t.Fatalf("AddLabel escaping: got %s", got)
	}
	// And the whole exposition must stay parseable: one sample line,
	// no stray quotes/newlines splitting it.
	r := NewRegistry()
	r.Counter(Label("pia_esc", "comp", "a\"b\\c\nd")).Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if want := `pia_esc{comp="a\"b\\c\nd"} 1` + "\n"; !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped sample %q:\n%s", want, out)
	}
	if strings.Count(out, "\n") != 2 { // TYPE line + sample line
		t.Fatalf("escaped value split the exposition:\n%q", out)
	}
}

func TestHelpLines(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("pia_helped", "n", "1")).Add(3)
	r.Counter("pia_unhelped").Add(1)
	r.SetHelp("pia_helped", "A documented counter.")
	r.SetHelp("pia_helped", "second registration must lose")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HELP pia_helped A documented counter.\n# TYPE pia_helped counter\n") {
		t.Fatalf("HELP must precede TYPE:\n%s", out)
	}
	if strings.Contains(out, "# HELP pia_unhelped") {
		t.Fatalf("undocumented metric grew a HELP line:\n%s", out)
	}
	if strings.Count(out, "# HELP pia_helped") != 1 {
		t.Fatalf("HELP must appear once per base name:\n%s", out)
	}
	// Nil-registry SetHelp is a no-op, like every other surface.
	(*Registry)(nil).SetHelp("x", "y")
}

func TestHistogramExposition(t *testing.T) {
	// Native histogram exposition: cumulative labelled buckets
	// including +Inf, _sum, _count, and labels preserved on every
	// derived series.
	r := NewRegistry()
	h := r.Histogram(Label("pia_hx", "sub", "a"), []int64{10, 100})
	for _, v := range []int64{1, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pia_hx histogram\n",
		`pia_hx_bucket{sub="a",le="10"} 1` + "\n",
		`pia_hx_bucket{sub="a",le="100"} 2` + "\n",
		`pia_hx_bucket{sub="a",le="+Inf"} 3` + "\n",
		`pia_hx_sum{sub="a"} 551` + "\n",
		`pia_hx_count{sub="a"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "test-mode")
	RegisterBuildInfo(nil, "ignored") // must not panic
	var found Sample
	for _, s := range r.Snapshot() {
		if strings.HasPrefix(s.Name, "pia_build_info{") {
			found = s
		}
	}
	if found.Name == "" || found.Value != 1 {
		t.Fatalf("pia_build_info missing or not 1: %+v", found)
	}
	for _, want := range []string{`mode="test-mode"`, `go="`, `version="`} {
		if !strings.Contains(found.Name, want) {
			t.Fatalf("pia_build_info labels missing %s: %s", want, found.Name)
		}
	}
	if BuildVersion() == "" {
		t.Fatal("BuildVersion must never be empty")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# HELP pia_build_info") {
		t.Fatalf("pia_build_info must carry help text:\n%s", buf.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("pia_j", "n", "1")).Add(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Sample `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Value != 3 {
		t.Fatalf("round-trip = %+v", doc.Metrics)
	}

	// An empty registry must still produce a valid document with an
	// empty (not null) list.
	buf.Reset()
	if err := NewRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"metrics":[]`) {
		t.Fatalf("empty registry JSON = %q", buf.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("pia_frames", "node", "n1")).Add(7)
	r.Counter(Label("pia_frames", "node", "n2")).Add(9)
	h := r.Histogram("pia_lat", []int64{10})
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pia_frames counter\n",
		`pia_frames{node="n1"} 7` + "\n",
		`pia_frames{node="n2"} 9` + "\n",
		"# TYPE pia_lat histogram\n",
		`pia_lat_bucket{le="10"} 1` + "\n",
		`pia_lat_bucket{le="+Inf"} 2` + "\n",
		"pia_lat_sum 55\n",
		"pia_lat_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE pia_frames") != 1 {
		t.Fatalf("TYPE line must appear once per base name:\n%s", out)
	}
}

func TestReportLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps").Add(12)
	r.Gauge("runnable").Set(3)
	r.Histogram("skip_me", []int64{1}).Observe(1)
	line := ReportLine(time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC), r.Snapshot())
	if !strings.HasPrefix(line, "pia-report t=03:04:05.000") {
		t.Fatal(line)
	}
	if !strings.Contains(line, "steps=12") || !strings.Contains(line, "runnable=3") {
		t.Fatal(line)
	}
	if strings.Contains(line, "skip_me") {
		t.Fatalf("histograms must not appear in report lines: %s", line)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("pia_cc").Inc()
				r.Gauge("pia_cg").Set(int64(j))
				r.Histogram("pia_ch", []int64{100, 500}).Observe(int64(j))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("pia_cc").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}
