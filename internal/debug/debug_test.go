package debug

import (
	"testing"

	"repro/internal/core"
	"repro/internal/signal"
	"repro/internal/vtime"
)

// ticker advances time and emits its counter.
type ticker struct {
	I, N int
}

func (g *ticker) Run(p *core.Proc) error {
	for ; g.I < g.N; g.I++ {
		p.DelayUntil(vtime.Time(10 * (g.I + 1)))
		p.Send("out", signal.Word(g.I))
	}
	return nil
}

func (g *ticker) SaveState() ([]byte, error)  { return core.GobSave(g) }
func (g *ticker) RestoreState(b []byte) error { return core.GobRestore(g, b) }

type taker struct {
	Got int
}

func (c *taker) Run(p *core.Proc) error {
	for {
		if _, ok := p.Recv("in"); !ok {
			return nil
		}
		c.Got++
	}
}

func (c *taker) SaveState() ([]byte, error)  { return core.GobSave(c) }
func (c *taker) RestoreState(b []byte) error { return core.GobRestore(c, b) }

func build(t *testing.T, n int) (*core.Subsystem, *Debugger, *taker) {
	t.Helper()
	s := core.NewSubsystem("dbg")
	tc, _ := s.NewComponent("clock", &ticker{N: n})
	tc.AddPort("out")
	rc, _ := s.NewComponent("sink", &taker{})
	rc.AddPort("in")
	nw, _ := s.NewNet("bus", 0)
	s.Connect(nw, tc.Port("out"), rc.Port("in"))
	d := New(s)
	return s, d, rc.Behavior().(*taker)
}

func TestBreakpointPausesRun(t *testing.T) {
	_, d, _ := build(t, 10)
	bp, err := d.AddBreak("clock >= 50")
	if err != nil {
		t.Fatal(err)
	}
	hit, err := d.Continue(vtime.Infinity)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.Break != bp {
		t.Fatalf("hit = %+v", hit)
	}
	if bp.Hits != 1 || bp.Enabled() {
		t.Fatalf("breakpoint state: hits=%d enabled=%v", bp.Hits, bp.Enabled())
	}
	if d.Now() > 60 {
		t.Fatalf("paused too late: now=%v", d.Now())
	}
	// Resume to completion: no more hits.
	hit, err = d.Continue(vtime.Infinity)
	if err != nil {
		t.Fatal(err)
	}
	if hit != nil {
		t.Fatalf("unexpected second hit %+v", hit)
	}
}

func TestRearm(t *testing.T) {
	_, d, _ := build(t, 10)
	bp, _ := d.AddBreak("clock >= 30")
	if _, err := d.Continue(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	if !d.Rearm(bp.ID) {
		t.Fatal("rearm failed")
	}
	hit, err := d.Continue(vtime.Infinity)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.Break != bp || bp.Hits != 2 {
		t.Fatalf("rearm did not re-fire: %+v hits=%d", hit, bp.Hits)
	}
	if !d.Rearm(999) == false {
		t.Fatal("rearm of unknown id succeeded")
	}
}

func TestSingleStep(t *testing.T) {
	_, d, _ := build(t, 5)
	var times []vtime.Time
	for i := 0; i < 4; i++ {
		hit, err := d.Step(1, vtime.Infinity)
		if err != nil {
			t.Fatal(err)
		}
		if hit == nil || hit.Break != nil {
			t.Fatalf("step %d: hit %+v", i, hit)
		}
		times = append(times, d.Now())
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("stepping went backwards: %v", times)
		}
	}
	// Finish the run.
	if hit, err := d.Continue(vtime.Infinity); err != nil || hit != nil {
		t.Fatalf("final continue: %v %+v", hit, err)
	}
	if _, err := d.Step(0, vtime.Infinity); err == nil {
		t.Fatal("Step(0) accepted")
	}
}

func TestWatchpoint(t *testing.T) {
	_, d, _ := build(t, 10)
	wp, err := d.AddWatch("bus", func(v any) bool {
		w, ok := v.(signal.Word)
		return ok && w == 3
	})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := d.Continue(vtime.Infinity)
	if err != nil {
		t.Fatal(err)
	}
	if hit == nil || hit.Watch != wp {
		t.Fatalf("hit = %+v", hit)
	}
	if w, ok := hit.Value.(signal.Word); !ok || w != 3 {
		t.Fatalf("watch value %v", hit.Value)
	}
	if hit.Time != 40 {
		t.Fatalf("watch time %v, want 40", hit.Time)
	}
	if _, err := d.AddWatch("ghost", nil); err == nil {
		t.Fatal("watch on unknown net accepted")
	}
	if hit, err := d.Continue(vtime.Infinity); err != nil || hit != nil {
		t.Fatalf("resume after watch: %+v %v", hit, err)
	}
}

func TestInspection(t *testing.T) {
	_, d, sink := build(t, 6)
	if _, err := d.AddBreak("clock >= 30"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(vtime.Infinity); err != nil {
		t.Fatal(err)
	}
	comps := d.Components()
	if len(comps) != 2 || comps[0].Name != "clock" || comps[1].Name != "sink" {
		t.Fatalf("components %+v", comps)
	}
	if comps[0].LocalTime < 30 {
		t.Fatalf("clock local time %v", comps[0].LocalTime)
	}
	v, at, err := d.NetValue("bus")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(signal.Word); !ok || at == 0 {
		t.Fatalf("net value %v @%v", v, at)
	}
	if _, _, err := d.NetValue("ghost"); err == nil {
		t.Fatal("NetValue for unknown net succeeded")
	}
	if hit, err := d.Continue(vtime.Infinity); err != nil || hit != nil {
		t.Fatal(err)
	}
	if sink.Got != 6 {
		t.Fatalf("sink got %d after debug session, want 6", sink.Got)
	}
}

func TestRemove(t *testing.T) {
	_, d, _ := build(t, 5)
	bp, _ := d.AddBreak("clock >= 10")
	if !d.Remove(bp.ID) {
		t.Fatal("remove failed")
	}
	if hit, err := d.Continue(vtime.Infinity); err != nil || hit != nil {
		t.Fatalf("removed breakpoint fired: %+v %v", hit, err)
	}
	if d.Remove(12345) {
		t.Fatal("remove of unknown id succeeded")
	}
}

func TestBadBreakExpression(t *testing.T) {
	_, d, _ := build(t, 2)
	if _, err := d.AddBreak("clock >="); err == nil {
		t.Fatal("bad expression accepted")
	}
	if hit, err := d.Continue(vtime.Infinity); err != nil || hit != nil {
		t.Fatal("clean run disturbed")
	}
}
