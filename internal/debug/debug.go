// Package debug implements the debugger the paper lists as current
// work ("Current work is in the extension of Pia to include a
// debugger"): run-until-breakpoint, single-stepping the subsystem
// scheduler, and inspection of components, nets and virtual time.
//
// Breakpoint conditions reuse the switchpoint expression language of
// package detail, so designers write the same predicates for
// debugging as for detail switching:
//
//	bp, _ := dbg.AddBreak("cpu >= 1_000 & dma_busy >= 1")
//	hit, _ := dbg.Continue(pia.Infinity)
//
// The debugger drives one subsystem; a distributed session uses one
// debugger per subsystem (breaking one subsystem simply stalls its
// peers through the ordinary safe-time protocol, which is what makes
// cross-site debugging workable at all).
package debug

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/detail"
	"repro/internal/vtime"
)

// Breakpoint pauses the run when its condition over component local
// times becomes true.
type Breakpoint struct {
	ID      int
	Source  string
	Cond    detail.Expr
	OneShot bool // delete after the first hit
	Hits    int

	enabled bool
}

// Enabled reports whether the breakpoint is armed.
func (b *Breakpoint) Enabled() bool { return b.enabled }

// Hit describes why a run paused.
type Hit struct {
	Break *Breakpoint // nil for single-step or watch hits
	Watch *Watchpoint // nil unless a watchpoint fired
	Time  vtime.Time  // subsystem time at the pause
	Value any         // the triggering net value for watch hits
}

// Watchpoint pauses when a net is driven (optionally filtered).
type Watchpoint struct {
	ID     int
	Net    string
	Filter func(v any) bool // nil: any drive
	Hits   int

	enabled bool
}

// Debugger wraps one subsystem with break/step/inspect controls. All
// methods are for the controlling goroutine; Continue and Step run
// the subsystem synchronously.
type Debugger struct {
	sub *core.Subsystem

	mu      sync.Mutex
	nextID  int
	breaks  []*Breakpoint
	watches []*Watchpoint

	stepBudget int  // >0: stop after this many scheduler steps
	pendingHit *Hit // set by hooks, consumed by Continue/Step
}

// New attaches a debugger to the subsystem (chains existing hooks).
// Attach before running.
func New(sub *core.Subsystem) *Debugger {
	d := &Debugger{sub: sub}
	prevStep := sub.OnStep
	sub.OnStep = func(now vtime.Time) {
		if prevStep != nil {
			prevStep(now)
		}
		d.onStep(now)
	}
	prevDrive := sub.OnDrive
	sub.OnDrive = func(net, src string, t vtime.Time, v any) {
		if prevDrive != nil {
			prevDrive(net, src, t, v)
		}
		d.onDrive(net, t, v)
	}
	return d
}

// AddBreak parses and arms a breakpoint condition (the switchpoint
// expression language: comparisons on component local times combined
// with & and |).
func (d *Debugger) AddBreak(cond string) (*Breakpoint, error) {
	expr, err := detail.ParseExpr(cond)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	bp := &Breakpoint{ID: d.nextID, Source: cond, Cond: expr, enabled: true}
	d.breaks = append(d.breaks, bp)
	return bp, nil
}

// AddWatch arms a watchpoint on a net; filter may be nil.
func (d *Debugger) AddWatch(net string, filter func(v any) bool) (*Watchpoint, error) {
	if d.sub.Net(net) == nil {
		return nil, fmt.Errorf("debug: no net %q", net)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	wp := &Watchpoint{ID: d.nextID, Net: net, Filter: filter, enabled: true}
	d.watches = append(d.watches, wp)
	return wp, nil
}

// Remove disarms a breakpoint or watchpoint by ID.
func (d *Debugger) Remove(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range d.breaks {
		if b.ID == id && b.enabled {
			b.enabled = false
			return true
		}
	}
	for _, w := range d.watches {
		if w.ID == id && w.enabled {
			w.enabled = false
			return true
		}
	}
	return false
}

// onStep evaluates breakpoints and the step budget (scheduler
// goroutine).
func (d *Debugger) onStep(now vtime.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pendingHit != nil {
		return // already stopping
	}
	if d.stepBudget > 0 {
		d.stepBudget--
		if d.stepBudget == 0 {
			d.pendingHit = &Hit{Time: now}
			d.sub.Stop()
			return
		}
	}
	ts := func(name string) (vtime.Time, bool) {
		c := d.sub.Component(name)
		if c == nil {
			return 0, false
		}
		return c.LocalTime(), true
	}
	for _, bp := range d.breaks {
		if !bp.enabled || !bp.Cond.Eval(ts) {
			continue
		}
		bp.Hits++
		if bp.OneShot {
			bp.enabled = false
		} else {
			// Level-triggered conditions (>=) would re-fire on every
			// step; disarm until explicitly re-enabled via Rearm.
			bp.enabled = false
		}
		d.pendingHit = &Hit{Break: bp, Time: now}
		d.sub.Stop()
		return
	}
}

// Rearm re-enables a previously hit breakpoint.
func (d *Debugger) Rearm(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, b := range d.breaks {
		if b.ID == id {
			b.enabled = true
			return true
		}
	}
	return false
}

// onDrive evaluates watchpoints (scheduler goroutine).
func (d *Debugger) onDrive(net string, t vtime.Time, v any) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pendingHit != nil {
		return
	}
	for _, wp := range d.watches {
		if !wp.enabled || wp.Net != net {
			continue
		}
		if wp.Filter != nil && !wp.Filter(v) {
			continue
		}
		wp.Hits++
		d.pendingHit = &Hit{Watch: wp, Time: t, Value: v}
		d.sub.Stop()
		return
	}
}

// Continue runs until a breakpoint or watchpoint fires, the horizon
// is reached, or the simulation completes. A nil Hit means no
// break occurred.
func (d *Debugger) Continue(until vtime.Time) (*Hit, error) {
	err := d.sub.Run(until)
	d.mu.Lock()
	hit := d.pendingHit
	d.pendingHit = nil
	d.mu.Unlock()
	if errors.Is(err, core.ErrStopped) {
		if hit != nil {
			return hit, nil
		}
		return nil, err // a foreign Stop
	}
	return nil, err
}

// Step executes exactly n scheduler steps (component resumptions)
// and pauses. It returns early with the responsible Hit if a
// breakpoint or watchpoint fires first.
func (d *Debugger) Step(n int, until vtime.Time) (*Hit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("debug: step count must be positive")
	}
	d.mu.Lock()
	d.stepBudget = n
	d.mu.Unlock()
	hit, err := d.Continue(until)
	d.mu.Lock()
	d.stepBudget = 0
	d.mu.Unlock()
	return hit, err
}

// ComponentInfo is an inspection snapshot of one component.
type ComponentInfo struct {
	Name      string
	LocalTime vtime.Time
	Runlevel  string
	Done      bool
}

// Components reports every component's state, sorted by name. Only
// valid while the subsystem is paused.
func (d *Debugger) Components() []ComponentInfo {
	comps := d.sub.Components()
	out := make([]ComponentInfo, 0, len(comps))
	for _, c := range comps {
		out = append(out, ComponentInfo{
			Name:      c.Name(),
			LocalTime: c.LocalTime(),
			Runlevel:  c.Runlevel(),
			Done:      c.Done(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Now returns the paused subsystem's virtual time.
func (d *Debugger) Now() vtime.Time { return d.sub.Now() }

// NetValue samples a net's last driven value and drive time.
func (d *Debugger) NetValue(net string) (any, vtime.Time, error) {
	n := d.sub.Net(net)
	if n == nil {
		return nil, 0, fmt.Errorf("debug: no net %q", net)
	}
	v, t := n.LastValue()
	return v, t, nil
}
