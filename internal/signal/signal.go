// Package signal defines the value types that travel on Pia nets.
//
// Pia lets a single communication action be rendered at several levels
// of detail: the same logical transfer might appear as a sequence of
// bus cycles (Level changes and Words) at the hardware level, or as a
// single Packet at the packet level. The types here cover that range
// and are all gob-encodable, so they can cross node boundaries
// unchanged.
package signal

import (
	"encoding/gob"
	"fmt"
)

// Level is a single digital signal level (a wire).
type Level bool

// Word is a four-byte bus word, the unit of the paper's "word passage"
// transfer mode.
type Word uint32

// Byte is a single byte, the unit of I2C-style transfers.
type Byte uint8

// Packet is a block of data sent as one unit — the paper's "packet
// passage" mode moved 1 KB packets.
type Packet []byte

// Frame is a packet with link-level addressing, used by the cellular
// link model in WubbleU.
type Frame struct {
	Src, Dst string
	Seq      uint32
	Payload  []byte
	Last     bool // final frame of a message
}

// IRQ is an interrupt request raised by hardware toward a processor
// component.
type IRQ struct {
	Line  int
	Cause string
}

// BusCycle is one cycle on a parallel bus at the hardware detail
// level.
type BusCycle struct {
	Addr  uint32
	Data  Word
	Write bool
}

// Control is a small out-of-band control token used by protocol
// implementations (start/stop/ack conditions).
type Control struct {
	Op  string
	Arg int64
}

// Size reports how many payload bytes a value represents; it is what
// the link models charge bandwidth for. Unknown types cost one byte.
func Size(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case Level, Byte:
		return 1
	case Word:
		return 4
	case Packet:
		return len(x)
	case Frame:
		return len(x.Payload) + 12 // header modelled as 12 bytes
	case BusCycle:
		return 8
	case IRQ:
		return 2
	case Control:
		return 4
	case []byte:
		return len(x)
	case string:
		return len(x)
	default:
		return 1
	}
}

// String renders a value compactly for traces.
func String(v any) string {
	switch x := v.(type) {
	case Packet:
		return fmt.Sprintf("packet[%dB]", len(x))
	case Frame:
		return fmt.Sprintf("frame{%s->%s #%d %dB last=%v}", x.Src, x.Dst, x.Seq, len(x.Payload), x.Last)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Register registers every signal type with gob. Call it once in any
// process that sends events across a node boundary; the node package
// does so automatically.
func Register() {
	gob.Register(Level(false))
	gob.Register(Word(0))
	gob.Register(Byte(0))
	gob.Register(Packet(nil))
	gob.Register(Frame{})
	gob.Register(IRQ{})
	gob.Register(BusCycle{})
	gob.Register(Control{})
}
