package signal

import (
	"bytes"
	"encoding/gob"
	"testing"
	"testing/quick"
)

func TestSize(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{Level(true), 1},
		{Byte(7), 1},
		{Word(9), 4},
		{Packet(make([]byte, 100)), 100},
		{Frame{Payload: make([]byte, 20)}, 32},
		{BusCycle{}, 8},
		{IRQ{}, 2},
		{Control{}, 4},
		{[]byte("abc"), 3},
		{"abcd", 4},
		{struct{}{}, 1},
	}
	for _, c := range cases {
		if got := Size(c.v); got != c.want {
			t.Errorf("Size(%T) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSizePacketProperty(t *testing.T) {
	f := func(p []byte) bool { return Size(Packet(p)) == len(p) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if String(Packet(make([]byte, 5))) != "packet[5B]" {
		t.Fatal("packet String wrong")
	}
	if String(Word(3)) == "" || String(Frame{Src: "a", Dst: "b"}) == "" {
		t.Fatal("empty String")
	}
}

func TestGobRoundTrip(t *testing.T) {
	Register()
	values := []any{
		Level(true),
		Word(0xdeadbeef),
		Byte(0x7f),
		Packet([]byte{1, 2, 3}),
		Frame{Src: "hh", Dst: "srv", Seq: 9, Payload: []byte{4, 5}, Last: true},
		IRQ{Line: 3, Cause: "dma"},
		BusCycle{Addr: 0x100, Data: 42, Write: true},
		Control{Op: "start", Arg: 1},
	}
	for _, v := range values {
		var buf bytes.Buffer
		holder := struct{ V any }{v}
		if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		var out struct{ V any }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		if String(out.V) != String(v) {
			t.Fatalf("round trip %T: got %v, want %v", v, out.V, v)
		}
	}
}
