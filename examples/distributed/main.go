// Distributed: two Pia nodes in one process, connected over real
// loopback TCP, co-simulating a requester and a responder whose
// shared net is split across the nodes. Run with -optimistic to use
// optimistic channels (checkpoints + rollback) instead of the
// conservative safe-time protocol.
//
//	go run ./examples/distributed [-optimistic]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	pia "repro"
)

// requester sends queries and measures round trips.
type requester struct {
	Rounds int
	RTTs   []int64
}

func (r *requester) Run(p *pia.Proc) error {
	for i := 0; i < r.Rounds; i++ {
		start := p.Time()
		p.Send("req", i)
		m, ok := p.Recv("rsp")
		if !ok {
			return nil
		}
		r.RTTs = append(r.RTTs, int64(p.Time().Sub(start)))
		_ = m
	}
	return nil
}

func (r *requester) SaveState() ([]byte, error)  { return pia.GobSave(r) }
func (r *requester) RestoreState(b []byte) error { return pia.GobRestore(r, b) }

// responder echoes queries after some compute time.
type responder struct {
	Served int
}

func (r *responder) Run(p *pia.Proc) error {
	for {
		m, ok := p.Recv("req")
		if !ok {
			return nil
		}
		p.Advance(pia.Microseconds(150)) // simulated processing
		r.Served++
		p.Send("rsp", m.Value)
	}
}

func (r *responder) SaveState() ([]byte, error)  { return pia.GobSave(r) }
func (r *responder) RestoreState(b []byte) error { return pia.GobRestore(r, b) }

func main() {
	optimistic := flag.Bool("optimistic", false, "use optimistic channels")
	flag.Parse()

	req := &requester{Rounds: 8}
	rsp := &responder{}
	b := pia.NewSystem("distributed").
		AddComponent("client", "site-a", req, "req", "rsp").
		AddComponent("server", "site-b", rsp, "req", "rsp").
		AddNet("req", 0, "client.req", "server.req").
		AddNet("rsp", 0, "client.rsp", "server.rsp")
	policy := pia.Conservative
	if *optimistic {
		policy = pia.Optimistic
	}
	b.SetDefaultChannel(policy, pia.LANLink)

	n1, n2 := pia.NewNode("node-a"), pia.NewNode("node-b")
	cl, err := b.BuildOnNodes(map[string]*pia.Node{"site-a": n1, "site-b": n2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if *optimistic {
		for _, name := range cl.SubsystemNames() {
			cl.Subsystem(name).SetAutoCheckpoint(pia.Milliseconds(1))
			cl.Subsystem(name).SetCheckpointRetention(1000)
		}
	}

	start := time.Now()
	if err := cl.Run(pia.Time(pia.Seconds(1))); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("policy: %v, %d round trips over TCP-split nets\n", policy, len(req.RTTs))
	for i, rtt := range req.RTTs {
		fmt.Printf("  round %d: %v virtual\n", i, pia.Duration(rtt))
	}
	for _, name := range cl.SubsystemNames() {
		st := cl.Subsystem(name).Stats()
		fmt.Printf("%s: steps=%d stalls=%d restores=%d\n", name, st.Steps, st.Stalls, st.Restores)
	}
	fmt.Printf("wall clock: %v\n", wall)
}
