// Hardware in the loop: a simulated FPGA board served by a remote
// hardware server (§2.3) is patched into a co-simulation through the
// stub interface — set/read time, run-for-a-window, stall, buffered
// interrupts. The simulated processor polls the board's registers
// and services its interrupts, with hardware and simulator clocks
// kept in lock step.
//
//	go run ./examples/hwinloop
package main

import (
	"fmt"
	"log"

	pia "repro"
	"repro/internal/signal"
)

// monitor services interrupts from the board.
type monitor struct {
	IRQs []int64
}

func (m *monitor) Run(p *pia.Proc) error {
	for {
		msg, ok := p.Recv("irq")
		if !ok {
			return nil
		}
		if _, isIRQ := msg.Value.(signal.IRQ); isIRQ {
			m.IRQs = append(m.IRQs, int64(msg.Time))
		}
	}
}

func (m *monitor) SaveState() ([]byte, error)  { return pia.GobSave(m) }
func (m *monitor) RestoreState(b []byte) error { return pia.GobRestore(m, b) }

func main() {
	// The "real hardware": a board whose logic raises a heartbeat
	// interrupt every 5 ms and squares whatever is in register 0.
	board := pia.NewSimBoard(func(regs map[uint32]uint32, from, to pia.Time) []pia.HWInterrupt {
		var irqs []pia.HWInterrupt
		period := pia.Time(pia.Milliseconds(5))
		first := (from/period + 1) * period
		for t := first; t <= to; t += period {
			irqs = append(irqs, pia.HWInterrupt{Line: 1, At: t})
		}
		regs[1] = regs[0] * regs[0]
		return irqs
	})

	// Publish it on a hardware server, as if it lived in another lab.
	srv, addr, err := pia.ServeHardware(board, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("hardware server at %s\n", addr)

	dev, err := pia.DialHardware(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer dev.Close()

	adapter := &pia.HWAdapter{
		Dev:     dev,
		Quantum: pia.Milliseconds(1),
		Horizon: pia.Time(pia.Milliseconds(25)),
	}
	mon := &monitor{}
	b := pia.NewSystem("hwinloop").
		AddComponent("board", "main", adapter, "bus", "irq").
		AddComponent("cpu", "main", mon, "irq").
		AddNet("bus", 0, "board.bus").
		AddNet("irqline", 0, "board.irq", "cpu.irq")
	sim, err := b.BuildLocal()
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(pia.Time(pia.Milliseconds(30))); err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	fmt.Printf("serviced %d heartbeat interrupts from remote hardware:\n", len(mon.IRQs))
	for i, at := range mon.IRQs {
		fmt.Printf("  irq %d at %v\n", i, pia.Time(at))
	}
	hwTime, _ := dev.ReadTime()
	fmt.Printf("hardware clock: %v (adapter horizon %v, simulator ran to %v)\n",
		hwTime, adapter.Horizon, sim.Subsystem("main").Now())
}
