// Quickstart: the smallest useful Pia co-simulation — a traffic
// generator and a device under test exchanging values over a net,
// with virtual time managed by the kernel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pia "repro"
)

// generator produces a burst of samples.
type generator struct {
	Sent int
}

func (g *generator) Run(p *pia.Proc) error {
	for g.Sent < 5 {
		p.Delay(pia.Microseconds(10)) // the sampling interval
		p.Send("out", g.Sent*g.Sent)
		g.Sent++
	}
	return nil
}

func (g *generator) SaveState() ([]byte, error)  { return pia.GobSave(g) }
func (g *generator) RestoreState(b []byte) error { return pia.GobRestore(g, b) }

// accumulator is the device under test: it integrates what it sees.
type accumulator struct {
	Sum int
}

func (a *accumulator) Run(p *pia.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil // simulation over
		}
		a.Sum += m.Value.(int)
		fmt.Printf("t=%-8v received %3v  sum=%d\n", m.Time, m.Value, a.Sum)
	}
}

func (a *accumulator) SaveState() ([]byte, error)  { return pia.GobSave(a) }
func (a *accumulator) RestoreState(b []byte) error { return pia.GobRestore(a, b) }

func main() {
	gen := &generator{}
	acc := &accumulator{}

	b := pia.NewSystem("quickstart").
		AddComponent("gen", "main", gen, "out").
		AddComponent("acc", "main", acc, "in").
		AddNet("wire", pia.Microseconds(1), "gen.out", "acc.in")
	sim, err := b.BuildLocal()
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Run(pia.Infinity); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final sum: %d (virtual time %v)\n", acc.Sum, sim.Subsystem("main").Now())
}
