// WubbleU: the paper's hand-held web browser benchmark, simulated
// locally with a detail-level switchpoint. The page load starts with
// the DMA link rendered at word level (every 4-byte word an event);
// a switchpoint retargets the cellular ASIC to packet level once the
// browser's local clock passes 200 ms, exactly the kind of dynamic
// detail change §2.1.3 describes.
//
//	go run ./examples/wubbleu
package main

import (
	"fmt"
	"log"
	"time"

	pia "repro"
	"repro/internal/wubbleu"
)

func main() {
	cfg := wubbleu.DefaultConfig()
	cfg.Loads = 2
	cfg.NoCache = true // both loads exercise the link
	cfg.Level = pia.LevelWord

	b := pia.NewSystem("wubbleu")
	app, err := wubbleu.Install(b, cfg, wubbleu.LocalPlacement())
	if err != nil {
		log.Fatal(err)
	}
	sim, err := b.BuildLocal()
	if err != nil {
		log.Fatal(err)
	}

	// The first load completes at roughly 790 ms of virtual time;
	// switching just after it means load 1 transfers at word level
	// and load 2 at packet level.
	engine := sim.Engines["main"]
	sp, err := engine.AddRule("when browser >= 795_000_000: asic->packetLevel")
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := sim.Run(pia.Infinity); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	res := app.Result()
	fmt.Printf("loaded %q twice (%d bytes each)\n", cfg.URL, res.PageBytes[0])
	for i, d := range res.LoadVirt {
		level := "word"
		if i > 0 {
			level = "packet (switched)"
		}
		fmt.Printf("  load %d: %-10v virtual at %s level\n", i+1, d, level)
	}
	fmt.Printf("switchpoint fired: %v\n", sp.Fired())
	fmt.Printf("DMA drives: %d, wall clock: %v\n", res.DMADrives, wall)
}
