// Chaos: the WubbleU hand-held browser split across two Pia nodes —
// the paper's geographically distributed setup — with the cross-node
// link deliberately misbehaving. The page loads twice: once over
// clean loopback TCP, once with seeded WAN faults (drops,
// duplicates, reorders, corruption, jitter, one scripted
// partition/heal cycle) injected under a resilient session layer
// that reconnects and replays. The same -seed reproduces the same
// misbehaviour frame for frame, and the simulated load comes out
// bit-identical either way: WAN trouble costs wall clock, never
// simulation results.
//
//	go run ./examples/chaos [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	pia "repro"
	"repro/internal/wubbleu"
)

// appConfig is a small page at word level: every 4-byte word of the
// transfer is an event on the faulty link, so there is plenty of
// traffic to misbehave with.
func appConfig() wubbleu.Config {
	cfg := wubbleu.DefaultConfig()
	cfg.PageSize = 4 * 1024
	cfg.Images = 1
	cfg.Level = pia.LevelWord
	return cfg
}

// leg runs the split load once and returns the result plus the two
// nodes, so the caller can read fault and recovery counters.
func leg(seed int64, faulty bool) (res wubbleu.Result, wall time.Duration, n1, n2 *pia.Node, err error) {
	cfg := appConfig()
	b := pia.NewSystem("wubbleu-chaos")
	app, err := wubbleu.Install(b, cfg, wubbleu.RemotePlacement())
	if err != nil {
		return res, 0, nil, nil, err
	}
	b.SetDefaultChannel(pia.Conservative, pia.LoopbackLink)
	if faulty {
		b.SetFaults(pia.FaultConfig{
			Seed:        seed,
			Jitter:      200 * time.Microsecond,
			DropProb:    0.03,
			DupProb:     0.02,
			ReorderProb: 0.02,
			CorruptProb: 0.02,
			Partitions:  []pia.FaultPartition{{AtFrame: 50, Heal: 15 * time.Millisecond}},
		})
		b.SetResilience(pia.ResilienceConfig{
			Heartbeat:        20 * time.Millisecond,
			HandshakeTimeout: 250 * time.Millisecond,
			RetryBase:        2 * time.Millisecond,
			RetryCap:         50 * time.Millisecond,
			RetryMax:         40,
		})
	}

	n1, n2 = pia.NewNode("handheld-node"), pia.NewNode("modem-node")
	cl, err := b.BuildOnNodes(map[string]*pia.Node{"handheld": n1, "modemsite": n2})
	if err != nil {
		return res, 0, nil, nil, err
	}
	defer cl.Close()
	start := time.Now()
	if err := cl.Run(pia.Time(pia.Seconds(10))); err != nil {
		return res, 0, nil, nil, err
	}
	return app.Result(), time.Since(start), n1, n2, nil
}

func main() {
	seed := flag.Int64("seed", 1, "fault schedule seed")
	flag.Parse()

	clean, cleanWall, _, _, err := leg(*seed, false)
	if err != nil {
		log.Fatal(err)
	}
	faulty, faultyWall, n1, n2, err := leg(*seed, true)
	if err != nil {
		log.Fatal(err)
	}

	var faults pia.FaultStats
	var resil pia.ResilienceStats
	for _, n := range []*pia.Node{n1, n2} {
		for _, st := range n.FaultStats() {
			faults.Frames += st.Frames
			faults.Dropped += st.Dropped
			faults.Duplicated += st.Duplicated
			faults.Reordered += st.Reordered
			faults.Corrupted += st.Corrupted
			faults.Cuts += st.Cuts
		}
		rs := n.ResilienceStats()
		resil.EpochDeaths += rs.EpochDeaths
		resil.Resumes += rs.Resumes
		resil.ReplayedFrames += rs.ReplayedFrames
		resil.Rewinds += rs.Rewinds
	}

	fmt.Printf("clean:  loaded %q in %v virtual, %d DMA drives, %v wall\n",
		appConfig().URL, clean.LoadVirt[0], clean.DMADrives, cleanWall)
	fmt.Printf("faulty: loaded %q in %v virtual, %d DMA drives, %v wall (seed %d)\n",
		appConfig().URL, faulty.LoadVirt[0], faulty.DMADrives, faultyWall, *seed)
	fmt.Printf("injected: %d/%d frames faulted (%d dropped, %d duplicated, %d reordered, %d corrupted, %d cuts)\n",
		faults.Dropped+faults.Duplicated+faults.Reordered+faults.Corrupted+faults.Cuts,
		faults.Frames, faults.Dropped, faults.Duplicated, faults.Reordered, faults.Corrupted, faults.Cuts)
	fmt.Printf("recovered: %d epoch deaths, %d resumes, %d envelopes replayed, %d rewinds\n",
		resil.EpochDeaths, resil.Resumes, resil.ReplayedFrames, resil.Rewinds)

	if clean.LoadVirt[0] != faulty.LoadVirt[0] || clean.DMADrives != faulty.DMADrives {
		log.Fatalf("INVARIANT VIOLATED: clean (%v, %d drives) vs faulty (%v, %d drives)",
			clean.LoadVirt[0], clean.DMADrives, faulty.LoadVirt[0], faulty.DMADrives)
	}
	fmt.Println("invariant held: virtual load time and link drives identical under faults")
}
