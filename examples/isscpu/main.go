// isscpu: an instruction set simulator as a Pia component. A small
// RISC program computes Fibonacci numbers and writes each one to its
// output port; a peripheral raises a timer interrupt the program
// takes with WFI; the whole run is captured and dumped as a VCD
// waveform you can open in GTKWave.
//
//	go run ./examples/isscpu > fib.vcd
package main

import (
	"fmt"
	"log"
	"os"

	pia "repro"
	"repro/internal/iss"
	"repro/internal/signal"
	"repro/internal/trace"
)

const program = `
	; fibonacci: out 1 1 2 3 5 8 13 21 34 55, then wait for the timer
	li   r1, 0         ; a
	li   r2, 1         ; b
	li   r3, 0         ; i
	li   r4, 10        ; count
loop:	add  r5, r1, r2    ; next
	out  r2
	mov  r1, r2
	mov  r2, r5
	addi r3, r3, 1
	blt  r3, r4, loop
	wfi                ; take the timer interrupt
	li   r6, 0x700     ; IRQ mailbox
	ld   r7, [r6]
	out  r7            ; report which line fired
	halt
`

// watcher records CPU output.
type watcher struct {
	Got []uint32
}

func (w *watcher) Run(p *pia.Proc) error {
	for {
		m, ok := p.Recv("in")
		if !ok {
			return nil
		}
		if word, isW := m.Value.(signal.Word); isW {
			w.Got = append(w.Got, uint32(word))
		}
	}
}

func (w *watcher) SaveState() ([]byte, error)  { return pia.GobSave(w) }
func (w *watcher) RestoreState(b []byte) error { return pia.GobRestore(w, b) }

// timer raises one interrupt.
type timer struct {
	Fired bool
}

func (t *timer) Run(p *pia.Proc) error {
	if t.Fired {
		return nil
	}
	p.Delay(pia.Microseconds(10))
	p.Send("irq", signal.IRQ{Line: 5, Cause: "timer"})
	t.Fired = true
	return nil
}

func (t *timer) SaveState() ([]byte, error)  { return pia.GobSave(t) }
func (t *timer) RestoreState(b []byte) error { return pia.GobRestore(t, b) }

func main() {
	prog, err := iss.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "program:")
	for i, line := range iss.Disassemble(prog) {
		fmt.Fprintf(os.Stderr, "  %2d: %s\n", i, line)
	}

	cpu := &iss.CPU{Prog: prog, ModelName: "i960", IRQPort: "irq"}
	w := &watcher{}
	b := pia.NewSystem("isscpu").
		AddComponent("cpu", "main", cpu, "out", "in", "irq").
		AddComponent("watch", "main", w, "in").
		AddComponent("timer", "main", &timer{}, "irq").
		AddNet("bus", 0, "cpu.out", "watch.in").
		AddNet("irqline", 0, "timer.irq", "cpu.irq")
	sim, err := b.BuildLocal()
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.NewRecorder(0)
	rec.Attach(sim.Subsystem("main"))

	if err := sim.Run(pia.Infinity); err != nil {
		log.Fatal(err)
	}

	fmt.Fprintf(os.Stderr, "cpu executed %d instructions in %v virtual time (i960 @33MHz)\n",
		cpu.Executed, cpu.CyclesCharged())
	fmt.Fprintf(os.Stderr, "outputs: %v\n", w.Got)
	if err := rec.WriteVCD(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "VCD waveform written to stdout")
}
